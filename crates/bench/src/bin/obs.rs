//! Observability overhead comparison (metrics registry on vs off) →
//! `BENCH_obs.json`.
//!
//! ```text
//! cargo run --release -p dlra-bench --bin obs -- [--quick] \
//!     [--queries 256] [--datasets 4] [--n 1024] [--reps 5] [--out PATH]
//! ```
//!
//! Without `--out` the JSON document goes to stdout; a human-readable
//! table always goes to stderr.

use dlra_bench::obs::{run, ObsBenchSpec};

fn main() {
    let mut spec = ObsBenchSpec::default();
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
                .parse::<usize>()
                .unwrap_or_else(|_| panic!("{name} needs an integer"))
        };
        match arg.as_str() {
            "--quick" => spec = ObsBenchSpec::quick(),
            "--queries" => spec.queries = num("--queries"),
            "--datasets" => spec.datasets = num("--datasets"),
            "--servers" => spec.servers = num("--servers"),
            "--n" => spec.n = num("--n"),
            "--d" => spec.d = num("--d"),
            "--reps" => spec.reps = num("--reps"),
            "--seed" => {
                spec.seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("integer seed")
            }
            "--out" => out_path = Some(args.next().expect("--out needs a path")),
            other => panic!(
                "unknown argument {other}; try --quick --queries --datasets --servers --n --d --reps --seed --out"
            ),
        }
    }

    let report = run(&spec);
    eprintln!("{:>12} {:>12} {:>16}", "mode", "wall_s", "per_query_ns");
    for m in &report.results {
        eprintln!("{:>12} {:>12.6} {:>16.0}", m.mode, m.wall_s, m.per_query_ns);
    }
    eprintln!(
        "overhead: {:+.2}% — registry saw {} (outputs identical: {})",
        report.overhead_pct(),
        report.snapshot.latency,
        report.outputs_identical
    );
    assert!(
        report.outputs_identical,
        "metrics changed output bits — investigate before publishing numbers"
    );

    let json = report.to_json();
    match out_path {
        Some(path) => {
            std::fs::write(&path, json).expect("write BENCH json");
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
}
