//! Regenerates **Figure 2** of the paper: actual relative error
//! `‖A−AP‖²_F / ‖A−[A]ₖ‖²_F` vs projection dimension `k`, per dataset
//! panel and communication-ratio budget.
//!
//! Usage mirrors `fig1`:
//!   cargo run --release -p dlra-bench --bin fig2 -- [--panel <name>] [--quick] ...

use dlra_bench::cli;
use dlra_bench::repro::render_panel;

fn main() {
    let (panel, spec, ps) = cli::parse_args();
    println!("Figure 2 — relative error vs projection dimension\n");
    for p in cli::panels(&panel, &spec, &ps) {
        println!("{}", render_panel(&p, 2));
    }
}
