//! Saturation sweep: open-loop overload vs the service's admission bound
//! and memory quota → `BENCH_pressure.json`.
//!
//! ```text
//! cargo run --release -p dlra-bench --bin pressure -- [--quick] \
//!     [--executors 3] [--servers 4] [--n 256] [--d 16] [--probe 64] \
//!     [--wave 256] [--multipliers 2,4,10] [--max-queue 8] [--out PATH]
//! ```
//!
//! Without `--out` the JSON document goes to stdout; a human-readable
//! table always goes to stderr. The process aborts (and writes nothing)
//! unless every wave stayed bounded — queue, memory, latency — and shed
//! fast-fail stayed in microseconds.

use dlra_bench::pressure::{run, PressureSpec};

fn main() {
    let mut spec = PressureSpec::default();
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
                .parse::<usize>()
                .unwrap_or_else(|_| panic!("{name} needs an integer"))
        };
        match arg.as_str() {
            "--quick" => {
                let q = PressureSpec::quick();
                spec.probe = q.probe;
                spec.wave = q.wave;
            }
            "--executors" => spec.executors = num("--executors").max(2),
            "--servers" => spec.servers = num("--servers"),
            "--n" => spec.n = num("--n"),
            "--d" => spec.d = num("--d"),
            "--probe" => spec.probe = num("--probe"),
            "--wave" => spec.wave = num("--wave"),
            "--max-queue" => spec.max_queue = num("--max-queue") as u64,
            "--spill-every" => spec.spill_every = num("--spill-every").max(1),
            "--multipliers" => {
                spec.multipliers = args
                    .next()
                    .expect("--multipliers needs a value")
                    .split(',')
                    .map(|x| x.parse().expect("numeric multiplier"))
                    .collect()
            }
            "--seed" => {
                spec.seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("integer seed")
            }
            "--out" => out_path = Some(args.next().expect("--out needs a path")),
            other => panic!(
                "unknown argument {other}; try --quick --executors --servers --n --d \
                 --probe --wave --multipliers --max-queue --spill-every --seed --out"
            ),
        }
    }

    let report = run(&spec);
    eprintln!(
        "capacity: {:.0} q/s on {} executors (mean service {:.0}us); bound {} in system, {} budget bytes",
        report.capacity_qps,
        spec.executors - 1,
        report.probe_mean_s * 1e6,
        spec.max_queue,
        spec.budget()
    );
    eprintln!(
        "{:>6} {:>9} {:>9} {:>6} {:>6} {:>12} {:>12} {:>14} {:>10} {:>14} {:>9}",
        "mult",
        "submitted",
        "admitted",
        "shed",
        "other",
        "p50_us",
        "p99_us",
        "shed_p99_us",
        "in_system",
        "resident_max",
        "evictions"
    );
    for w in &report.waves {
        eprintln!(
            "{:>6} {:>9} {:>9} {:>6} {:>6} {:>12.1} {:>12.1} {:>14.1} {:>10} {:>14} {:>9}",
            w.multiplier,
            w.submitted,
            w.admitted_ok,
            w.shed,
            w.other,
            w.admitted_p50_s * 1e6,
            w.admitted_p99_s * 1e6,
            w.shed_submit_p99_micros,
            w.max_in_system,
            w.max_resident_bytes,
            w.quota_evictions
        );
    }
    let violations = report.violations();
    for v in &violations {
        eprintln!("VIOLATION: {v}");
    }
    assert!(
        violations.is_empty(),
        "the service failed to self-regulate — fix before publishing numbers"
    );

    let json = report.to_json();
    match out_path {
        Some(path) => {
            std::fs::write(&path, json).expect("write BENCH json");
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
}
