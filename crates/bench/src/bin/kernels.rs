//! Kernel performance sweep → `BENCH_kernels.json`.
//!
//! ```text
//! cargo run --release -p dlra-bench --bin kernels -- [--quick] \
//!     [--sizes 256,512,1024] [--threads 1,2,4] [--reps 3] [--out PATH]
//! ```
//!
//! Without `--out` the JSON document goes to stdout; a human-readable
//! table always goes to stderr.

use dlra_bench::kernels::{run, KernelBenchSpec};

fn main() {
    let mut spec = KernelBenchSpec::default();
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => {
                let q = KernelBenchSpec::quick();
                spec.sizes = q.sizes;
                spec.reps = q.reps;
            }
            "--sizes" => {
                spec.sizes = args
                    .next()
                    .expect("--sizes needs a value")
                    .split(',')
                    .map(|x| x.parse().expect("integer size"))
                    .collect()
            }
            "--threads" => {
                spec.threads = args
                    .next()
                    .expect("--threads needs a value")
                    .split(',')
                    .map(|x| x.parse().expect("integer thread count"))
                    .collect()
            }
            "--reps" => {
                spec.reps = args
                    .next()
                    .expect("--reps needs a value")
                    .parse()
                    .expect("integer reps")
            }
            "--seed" => {
                spec.seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("integer seed")
            }
            "--out" => out_path = Some(args.next().expect("--out needs a path")),
            other => panic!("unknown argument {other}; try --quick --sizes --threads --reps --out"),
        }
    }

    let report = run(&spec);
    eprintln!(
        "{:>18} {:>8} {:>6} {:>8} {:>12} {:>10}",
        "kernel", "impl", "n", "threads", "wall_s", "GFLOP/s"
    );
    for m in &report.results {
        eprintln!(
            "{:>18} {:>8} {:>6} {:>8} {:>12.6} {:>10.3}",
            m.kernel, m.implementation, m.n, m.threads, m.wall_s, m.gflops
        );
    }
    let biggest = spec.sizes.iter().copied().max().unwrap_or(0);
    if let Some(speedup) = report.speedup_vs_naive("matmul", biggest, 1) {
        eprintln!("matmul {biggest}: blocked 1-thread is {speedup:.2}x the naive reference");
    }

    let json = report.to_json();
    match out_path {
        Some(path) => {
            std::fs::write(&path, json).expect("write BENCH json");
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
}
