//! Regenerates **Figure 1** of the paper: additive error vs projection
//! dimension `k`, per dataset panel and communication-ratio budget, with
//! the theoretical prediction `k²/r` alongside (the dashed lines in the
//! paper's plots).
//!
//! Usage:
//!   cargo run --release -p dlra-bench --bin fig1 -- \
//!       [--panel forest_cover|kddcup|caltech101|scenes|isolet|all] \
//!       [--p 1,2,5,20] [--ratios 0.5,0.25,0.1] [--scale N] [--quick]

use dlra_bench::cli;
use dlra_bench::repro::render_panel;

fn main() {
    let (panel, spec, ps) = cli::parse_args();
    println!("Figure 1 — additive error vs projection dimension\n");
    for p in cli::panels(&panel, &spec, &ps) {
        println!("{}", render_panel(&p, 1));
    }
}
