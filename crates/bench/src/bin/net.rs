//! Transport sweep (threaded channels vs loopback TCP) →
//! `BENCH_net.json`.
//!
//! ```text
//! cargo run --release -p dlra-bench --bin net -- [--quick] \
//!     [--servers 4,16,64] [--n 512] [--d 16] [--r 40] [--reps 5] \
//!     [--out PATH]
//! ```
//!
//! Without `--out` the JSON document goes to stdout; a human-readable
//! table always goes to stderr.

use dlra_bench::net::{run, NetBenchSpec};

fn main() {
    let mut spec = NetBenchSpec::default();
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
                .parse::<usize>()
                .unwrap_or_else(|_| panic!("{name} needs an integer"))
        };
        match arg.as_str() {
            "--quick" => spec = NetBenchSpec::quick(),
            "--servers" => {
                spec.servers = args
                    .next()
                    .expect("--servers needs a value")
                    .split(',')
                    .map(|x| x.parse().expect("integer cluster size"))
                    .collect()
            }
            "--n" => spec.n = num("--n"),
            "--d" => spec.d = num("--d"),
            "--r" => spec.r = num("--r"),
            "--reps" => spec.reps = num("--reps"),
            "--seed" => {
                spec.seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("integer seed")
            }
            "--out" => out_path = Some(args.next().expect("--out needs a path")),
            other => panic!(
                "unknown argument {other}; try --quick --servers --n --d --r --reps --seed --out"
            ),
        }
    }

    let report = run(&spec);
    eprintln!(
        "{:>8} {:>9} {:>12} {:>12} {:>12} {:>10} {:>12} {:>10} {:>10}",
        "servers",
        "substrate",
        "p50_s",
        "p99_s",
        "total_words",
        "messages",
        "wire_bytes",
        "B/word",
        "identical"
    );
    for m in &report.results {
        let (bytes, per_word) = match &m.wire {
            Some(w) => (
                w.total_bytes.to_string(),
                format!("{:.2}", w.bytes_per_word),
            ),
            None => ("-".to_string(), "-".to_string()),
        };
        eprintln!(
            "{:>8} {:>9} {:>12.6} {:>12.6} {:>12} {:>10} {:>12} {:>10} {:>10}",
            m.servers,
            m.substrate,
            m.p50_s,
            m.p99_s,
            m.total_words,
            m.messages,
            bytes,
            per_word,
            m.outputs_identical
        );
    }
    let smax = spec.servers.iter().copied().max().unwrap_or(1);
    if let (Some(overhead), Some(bpw)) = (report.socket_overhead(smax), report.bytes_per_word(smax))
    {
        eprintln!(
            "s = {smax}: sockets cost {overhead:.2}x threaded p50, {bpw:.2} wire bytes per \
             ledger word (outputs identical: {}, audit exact: {})",
            report.outputs_identical, report.wire_audit_exact
        );
    }
    assert!(
        report.outputs_identical,
        "substrate changed output bits — investigate before publishing numbers"
    );
    assert!(
        report.wire_audit_exact,
        "unexplained bytes on the wire — investigate before publishing numbers"
    );

    let json = report.to_json();
    match out_path {
        Some(path) => {
            std::fs::write(&path, json).expect("write BENCH json");
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
}
