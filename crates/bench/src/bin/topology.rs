//! Collective-topology sweep (star vs combining tree) →
//! `BENCH_topology.json`.
//!
//! ```text
//! cargo run --release -p dlra-bench --bin topology -- [--quick] \
//!     [--servers 8,64,256] [--fanout 2] [--n 512] [--d 16] [--r 40] \
//!     [--reps 3] [--out PATH]
//! ```
//!
//! Without `--out` the JSON document goes to stdout; a human-readable
//! table always goes to stderr.

use dlra_bench::topology::{run, TopologyBenchSpec};

fn main() {
    let mut spec = TopologyBenchSpec::default();
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
                .parse::<usize>()
                .unwrap_or_else(|_| panic!("{name} needs an integer"))
        };
        match arg.as_str() {
            "--quick" => {
                let q = TopologyBenchSpec::quick();
                spec.n = q.n;
                spec.d = q.d;
                spec.r = q.r;
                spec.reps = q.reps;
            }
            "--servers" => {
                spec.servers = args
                    .next()
                    .expect("--servers needs a value")
                    .split(',')
                    .map(|x| x.parse().expect("integer cluster size"))
                    .collect()
            }
            "--fanout" => spec.fanout = num("--fanout"),
            "--n" => spec.n = num("--n"),
            "--d" => spec.d = num("--d"),
            "--r" => spec.r = num("--r"),
            "--reps" => spec.reps = num("--reps"),
            "--seed" => {
                spec.seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("integer seed")
            }
            "--out" => out_path = Some(args.next().expect("--out needs a path")),
            other => panic!(
                "unknown argument {other}; try --quick --servers --fanout --n --d --r --reps --seed --out"
            ),
        }
    }

    let report = run(&spec);
    eprintln!(
        "{:>8} {:>8} {:>12} {:>18} {:>21} {:>12} {:>10}",
        "servers",
        "topology",
        "wall_s",
        "root_inbox_words",
        "root_inbox_messages",
        "total_words",
        "identical"
    );
    for m in &report.results {
        eprintln!(
            "{:>8} {:>8} {:>12.6} {:>18} {:>21} {:>12} {:>10}",
            m.servers,
            m.topology,
            m.wall_s,
            m.root_inbox_words,
            m.root_inbox_messages,
            m.total_words,
            m.outputs_identical
        );
    }
    let smax = spec.servers.iter().copied().max().unwrap_or(1);
    if let (Some(msgs), Some(words)) = (
        report.inbox_message_reduction(smax),
        report.inbox_word_reduction(smax),
    ) {
        eprintln!(
            "s = {smax}: tree cut coordinator-inbox messages {msgs:.2}x, words {words:.2}x \
             (outputs identical: {})",
            report.outputs_identical
        );
    }
    assert!(
        report.outputs_identical,
        "topology changed output bits — investigate before publishing numbers"
    );

    let json = report.to_json();
    match out_path {
        Some(path) => {
            std::fs::write(&path, json).expect("write BENCH json");
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
}
