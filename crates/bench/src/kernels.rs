//! The `kernels` bench: wall time and GFLOP/s for the blocked/threaded
//! dense kernels against the retained naive reference, across sizes and
//! thread counts. Emits the machine-readable `BENCH_kernels.json` that
//! starts the repository's performance trajectory — every future perf PR
//! regenerates it and compares.

use dlra_linalg::kernels::reference;
use dlra_linalg::{set_threads, Matrix, Projector};
use dlra_util::Rng;
use std::time::Instant;

/// Projector rank used by the `projector_apply` benchmark (a typical
/// adaptive-round basis width, `2k` for `k = 16`).
pub const PROJECTOR_RANK: usize = 32;

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct KernelBenchSpec {
    /// Square problem sizes `n` (matrices are `n × n`).
    pub sizes: Vec<usize>,
    /// Kernel thread counts to sweep.
    pub threads: Vec<usize>,
    /// Timed repetitions per cell (the minimum is reported).
    pub reps: usize,
    /// Seed for the operand matrices.
    pub seed: u64,
}

impl Default for KernelBenchSpec {
    fn default() -> Self {
        KernelBenchSpec {
            sizes: vec![256, 512, 1024],
            threads: vec![1, 2],
            reps: 3,
            seed: 0xBE9C_4E55,
        }
    }
}

impl KernelBenchSpec {
    /// Reduced sweep for CI smoke runs.
    pub fn quick() -> Self {
        KernelBenchSpec {
            sizes: vec![128, 256],
            threads: vec![1, 2],
            reps: 2,
            seed: 0xBE9C_4E55,
        }
    }
}

/// One measured cell.
#[derive(Debug, Clone)]
pub struct KernelMeasurement {
    /// Kernel name (`matmul`, `gram`, `transpose_matmul`, `projector_apply`).
    pub kernel: &'static str,
    /// `blocked` or `naive`.
    pub implementation: &'static str,
    /// Problem size `n`.
    pub n: usize,
    /// Kernel thread setting (naive reference is always single-threaded).
    pub threads: usize,
    /// Best wall time over the repetitions, seconds.
    pub wall_s: f64,
    /// Flops / wall time, in GFLOP/s.
    pub gflops: f64,
}

/// A completed sweep.
#[derive(Debug, Clone)]
pub struct KernelBenchReport {
    /// All measured cells.
    pub results: Vec<KernelMeasurement>,
    /// Hardware parallelism visible to the process.
    pub available_parallelism: usize,
}

fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    // One untimed warmup to fault pages and warm caches.
    let _ = f();
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        std::hint::black_box(&r);
    }
    best
}

/// Runs the sweep. Restores the kernel thread count to `1` on exit so the
/// caller's environment is not left with a stale setting.
pub fn run(spec: &KernelBenchSpec) -> KernelBenchReport {
    let mut rng = Rng::new(spec.seed);
    let mut results = Vec::new();
    for &n in &spec.sizes {
        let a = Matrix::gaussian(n, n, &mut rng);
        let b = Matrix::gaussian(n, n, &mut rng);
        let basis = dlra_linalg::orthonormalize_columns(&Matrix::gaussian(
            n,
            PROJECTOR_RANK.min(n),
            &mut rng,
        ));
        let projector = Projector::from_basis(basis);

        let mm_flops = 2.0 * (n as f64).powi(3);
        // Executed-arithmetic convention: both gram implementations compute
        // only the upper triangle (r·c·(c+1) flops) and mirror by copy, so
        // this is the arithmetic actually performed — about half the
        // 2·r·c² a full-matrix syrk-style count would report.
        let gram_flops = (n as f64) * (n as f64) * (n as f64 + 1.0);
        let proj_flops = 4.0 * (n as f64) * (n as f64) * PROJECTOR_RANK.min(n) as f64;

        // Naive reference: single-threaded by construction.
        set_threads(1);
        let wall = time_best(spec.reps, || reference::matmul(&a, &b).unwrap());
        results.push(cell("matmul", "naive", n, 1, wall, mm_flops));
        let wall = time_best(spec.reps, || reference::gram(&a));
        results.push(cell("gram", "naive", n, 1, wall, gram_flops));
        let wall = time_best(spec.reps, || reference::transpose_matmul(&a, &b).unwrap());
        results.push(cell("transpose_matmul", "naive", n, 1, wall, mm_flops));

        for &t in &spec.threads {
            set_threads(t);
            let wall = time_best(spec.reps, || a.matmul(&b).unwrap());
            results.push(cell("matmul", "blocked", n, t, wall, mm_flops));
            let wall = time_best(spec.reps, || a.gram());
            results.push(cell("gram", "blocked", n, t, wall, gram_flops));
            let wall = time_best(spec.reps, || a.transpose_matmul(&b).unwrap());
            results.push(cell("transpose_matmul", "blocked", n, t, wall, mm_flops));
            let wall = time_best(spec.reps, || projector.apply(&a).unwrap());
            results.push(cell("projector_apply", "blocked", n, t, wall, proj_flops));
        }
    }
    set_threads(1);
    KernelBenchReport {
        results,
        available_parallelism: std::thread::available_parallelism()
            .map(|x| x.get())
            .unwrap_or(1),
    }
}

fn cell(
    kernel: &'static str,
    implementation: &'static str,
    n: usize,
    threads: usize,
    wall_s: f64,
    flops: f64,
) -> KernelMeasurement {
    KernelMeasurement {
        kernel,
        implementation,
        n,
        threads,
        wall_s,
        gflops: flops / wall_s / 1e9,
    }
}

impl KernelBenchReport {
    /// Speedup of the blocked kernel at `threads` over the naive reference,
    /// for a given kernel and size (`None` if either cell is missing).
    pub fn speedup_vs_naive(&self, kernel: &str, n: usize, threads: usize) -> Option<f64> {
        let naive = self.find(kernel, "naive", n, 1)?;
        let blocked = self.find(kernel, "blocked", n, threads)?;
        Some(naive.wall_s / blocked.wall_s)
    }

    /// Wall-time ratio between two thread settings of the blocked kernel
    /// (`> 1` means `t2` is faster).
    pub fn thread_scaling(&self, kernel: &str, n: usize, t1: usize, t2: usize) -> Option<f64> {
        let a = self.find(kernel, "blocked", n, t1)?;
        let b = self.find(kernel, "blocked", n, t2)?;
        Some(a.wall_s / b.wall_s)
    }

    fn find(
        &self,
        kernel: &str,
        implementation: &str,
        n: usize,
        threads: usize,
    ) -> Option<&KernelMeasurement> {
        self.results.iter().find(|m| {
            m.kernel == kernel
                && m.implementation == implementation
                && m.n == n
                && m.threads == threads
        })
    }

    /// Serializes the report as the `BENCH_kernels.json` document.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(
            out,
            "  \"regenerate\": \"cargo run --release -p dlra-bench --bin kernels -- --out BENCH_kernels.json\","
        );
        let _ = writeln!(
            out,
            "  \"available_parallelism\": {},",
            self.available_parallelism
        );
        out.push_str("  \"results\": [\n");
        for (i, m) in self.results.iter().enumerate() {
            let comma = if i + 1 == self.results.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"kernel\": \"{}\", \"impl\": \"{}\", \"n\": {}, \"threads\": {}, \"wall_s\": {:.6}, \"gflops\": {:.3}}}{comma}",
                m.kernel, m.implementation, m.n, m.threads, m.wall_s, m.gflops
            );
        }
        out.push_str("  ],\n");
        out.push_str("  \"summary\": {\n");
        let biggest = self.results.iter().map(|m| m.n).max().unwrap_or(0);
        let max_threads = self.results.iter().map(|m| m.threads).max().unwrap_or(1);
        let speedup = self.speedup_vs_naive("matmul", biggest, 1).unwrap_or(0.0);
        let scaling = self
            .thread_scaling("matmul", biggest, 1, max_threads)
            .unwrap_or(1.0);
        let _ = writeln!(
            out,
            "    \"matmul_n\": {biggest},\n    \"matmul_single_thread_speedup_vs_naive\": {speedup:.3},\n    \"matmul_scaling_1_to_{max_threads}_threads\": {scaling:.3}"
        );
        out.push_str("  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_produces_all_cells_and_valid_json() {
        let spec = KernelBenchSpec {
            sizes: vec![16, 32],
            threads: vec![1, 2],
            reps: 1,
            seed: 1,
        };
        let report = run(&spec);
        // Per size: 3 naive + 2 threads × 4 blocked = 11 cells.
        assert_eq!(report.results.len(), 22);
        assert!(report
            .results
            .iter()
            .all(|m| m.wall_s > 0.0 && m.gflops.is_finite()));
        assert!(report.speedup_vs_naive("matmul", 32, 1).is_some());
        assert!(report.thread_scaling("matmul", 32, 1, 2).is_some());
        let json = report.to_json();
        assert!(json.contains("\"results\""));
        assert!(json.contains("\"matmul_single_thread_speedup_vs_naive\""));
        // Crude structural check: balanced braces/brackets.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
