//! The `planner` bench: batched vs unbatched query submission against one
//! resident dataset, measuring wall time and ledger words for B queries
//! sharing one `f`. Emits the machine-readable `BENCH_planner.json`.
//!
//! The batched path goes through `Runtime::submit_batch` with the plan
//! cache enabled: one `ZSampler::prepare` per distinct plan key, B
//! draw/fetch phases. The unbatched path disables the cache, so every
//! query re-prepares — exactly what `Runtime::submit` did before the
//! planner existed. Outputs are bit-identical either way (asserted into
//! the report), so the comparison isolates pure planning benefit.

use dlra_core::prelude::*;
use dlra_data::{noisy_low_rank, split_with_noise_shares};
use dlra_linalg::Matrix;
use dlra_runtime::{QueryRequest, Runtime, RuntimeConfig, Substrate};
use dlra_sampler::ZSamplerParams;
use dlra_util::Rng;
use std::time::Instant;

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct PlannerBenchSpec {
    /// Batch sizes B to measure.
    pub batches: Vec<usize>,
    /// Servers holding the resident dataset.
    pub servers: usize,
    /// Resident dataset shape.
    pub n: usize,
    /// Columns of the resident dataset.
    pub d: usize,
    /// Sample count per query.
    pub r: usize,
    /// Executor threads (and thus max queries drawing concurrently).
    pub executors: usize,
    /// Timed repetitions per cell (the minimum is reported).
    pub reps: usize,
    /// Seed for the dataset and the shared query seed.
    pub seed: u64,
}

impl Default for PlannerBenchSpec {
    fn default() -> Self {
        PlannerBenchSpec {
            batches: vec![1, 4, 16],
            servers: 4,
            n: 2048,
            d: 24,
            r: 60,
            executors: 4,
            reps: 3,
            seed: 0x9A5F_11E7,
        }
    }
}

impl PlannerBenchSpec {
    /// Reduced sweep for CI smoke runs.
    pub fn quick() -> Self {
        PlannerBenchSpec {
            n: 512,
            d: 12,
            r: 30,
            reps: 1,
            ..PlannerBenchSpec::default()
        }
    }

    /// The B queries of one batch: same `f` (identity), same seed and
    /// sampler parameters (one plan key), ranks cycling 1..=4 — the
    /// many-`k` sweep the fig1/fig2 harness runs sequentially.
    fn requests(&self) -> Vec<QueryRequest> {
        (0..self.batch_max())
            .map(|i| {
                QueryRequest::identity(Algorithm1Config {
                    k: 1 + i % 4.min(self.d),
                    r: self.r,
                    sampler: SamplerKind::Z(ZSamplerParams::default()),
                    seed: self.seed ^ 0x51,
                    ..Default::default()
                })
            })
            .collect()
    }

    fn batch_max(&self) -> usize {
        self.batches.iter().copied().max().unwrap_or(1)
    }
}

/// One measured cell.
#[derive(Debug, Clone)]
pub struct PlannerMeasurement {
    /// Batch size B.
    pub batch: usize,
    /// `batched` (plan cache on, `submit_batch`) or `unbatched` (cache
    /// off, independent submits).
    pub mode: &'static str,
    /// Best wall time over the repetitions, submit → last result, seconds.
    pub wall_s: f64,
    /// Preparation words physically paid (once per plan when batched,
    /// once per query when not).
    pub prepare_words: u64,
    /// Draw/fetch words across the batch.
    pub execute_words: u64,
    /// Number of preparations physically run.
    pub preparations: u64,
}

impl PlannerMeasurement {
    /// Total words physically crossing the wire for the batch.
    pub fn total_words(&self) -> u64 {
        self.prepare_words + self.execute_words
    }
}

/// A completed sweep.
#[derive(Debug, Clone)]
pub struct PlannerBenchReport {
    /// All measured cells.
    pub results: Vec<PlannerMeasurement>,
    /// Whether batched and unbatched outputs were bit-identical for every
    /// batch size (they must be; recorded as evidence, not hope).
    pub outputs_identical: bool,
    /// The spec the sweep ran with.
    pub spec: PlannerBenchSpec,
}

fn shares(spec: &PlannerBenchSpec) -> Vec<Matrix> {
    let mut rng = Rng::new(spec.seed);
    let a = noisy_low_rank(spec.n, spec.d, 5, 0.1, &mut rng);
    split_with_noise_shares(&a, spec.servers, 0.3, &mut rng)
}

fn runtime_config(spec: &PlannerBenchSpec, plan_cache: usize) -> RuntimeConfig {
    RuntimeConfig {
        executors: spec.executors,
        substrate: Substrate::Threaded,
        plan_cache,
        metrics: true,
        ..Default::default()
    }
}

/// Runs the sweep.
pub fn run(spec: &PlannerBenchSpec) -> PlannerBenchReport {
    let parts = shares(spec);
    let requests = spec.requests();

    // The preparation's deterministic ledger delta, measured once on a
    // direct model: the unbatched path re-pays exactly this per query.
    let prepare_words = {
        let mut model = PartitionModel::new(parts.clone(), EntryFunction::Identity).unwrap();
        prepare_z_plan(&mut model, &ZSamplerParams::default(), spec.seed ^ 0x51)
            .expect("bench dataset has mass")
            .prepare_comm
            .total_words()
    };

    let mut results = Vec::new();
    let mut outputs_identical = true;
    for &b in &spec.batches {
        let batch: Vec<QueryRequest> = requests[..b].to_vec();

        let mut batched_outputs: Vec<Algorithm1Output> = Vec::new();
        let mut best_batched = f64::INFINITY;
        let mut batched_prepare = 0u64;
        let mut batched_execute = 0u64;
        let mut batched_preparations = 0u64;
        for rep in 0..spec.reps.max(1) {
            // A fresh runtime per repetition: every repetition pays the
            // preparation exactly once (steady-state cache hits would be
            // free and flatter the batched path).
            let runtime = Runtime::new(parts.clone(), runtime_config(spec, 16)).unwrap();
            let t0 = Instant::now();
            let handles = runtime.submit_batch(batch.clone());
            let outcomes: Vec<_> = handles
                .into_iter()
                .map(|h| h.wait_outcome().expect("bench query failed"))
                .collect();
            let wall = t0.elapsed().as_secs_f64();
            best_batched = best_batched.min(wall);
            if rep == 0 {
                batched_prepare = outcomes
                    .iter()
                    .filter_map(|o| o.plan.as_ref())
                    .filter(|p| !p.cache_hit)
                    .map(|p| p.prepare_comm.total_words())
                    .sum();
                batched_preparations = outcomes
                    .iter()
                    .filter_map(|o| o.plan.as_ref())
                    .filter(|p| !p.cache_hit)
                    .count() as u64;
                batched_execute = outcomes
                    .iter()
                    .map(|o| {
                        let prep = o.plan.as_ref().map_or(0, |p| p.prepare_comm.total_words());
                        o.output.comm.total_words() - prep
                    })
                    .sum();
                batched_outputs = outcomes.into_iter().map(|o| o.output).collect();
            }
        }
        results.push(PlannerMeasurement {
            batch: b,
            mode: "batched",
            wall_s: best_batched,
            prepare_words: batched_prepare,
            execute_words: batched_execute,
            preparations: batched_preparations,
        });

        let mut best_unbatched = f64::INFINITY;
        let mut unbatched_total = 0u64;
        let mut unbatched_outputs: Vec<Algorithm1Output> = Vec::new();
        for rep in 0..spec.reps.max(1) {
            let runtime = Runtime::new(parts.clone(), runtime_config(spec, 0)).unwrap();
            let t0 = Instant::now();
            let handles: Vec<_> = batch.iter().map(|q| runtime.submit(q.clone())).collect();
            let outputs: Vec<_> = handles
                .into_iter()
                .map(|h| h.wait().expect("bench query failed"))
                .collect();
            let wall = t0.elapsed().as_secs_f64();
            best_unbatched = best_unbatched.min(wall);
            if rep == 0 {
                unbatched_total = outputs.iter().map(|o| o.comm.total_words()).sum();
                unbatched_outputs = outputs;
            }
        }
        let unbatched_prepare = prepare_words * b as u64;
        results.push(PlannerMeasurement {
            batch: b,
            mode: "unbatched",
            wall_s: best_unbatched,
            prepare_words: unbatched_prepare,
            execute_words: unbatched_total - unbatched_prepare,
            preparations: b as u64,
        });

        // The planner must not change a single bit of any output.
        outputs_identical &= batched_outputs.len() == unbatched_outputs.len()
            && batched_outputs
                .iter()
                .zip(&unbatched_outputs)
                .all(|(a, c)| {
                    a.projection.basis().as_slice() == c.projection.basis().as_slice()
                        && a.rows == c.rows
                        && a.comm == c.comm
                });
    }

    PlannerBenchReport {
        results,
        outputs_identical,
        spec: spec.clone(),
    }
}

impl PlannerBenchReport {
    fn find(&self, mode: &str, batch: usize) -> Option<&PlannerMeasurement> {
        self.results
            .iter()
            .find(|m| m.mode == mode && m.batch == batch)
    }

    /// Factor by which batching reduced the preparation words at batch
    /// size `b` (≈ b by construction).
    pub fn prepare_reduction(&self, b: usize) -> Option<f64> {
        let batched = self.find("batched", b)?;
        let unbatched = self.find("unbatched", b)?;
        (batched.prepare_words > 0)
            .then(|| unbatched.prepare_words as f64 / batched.prepare_words as f64)
    }

    /// Wall-clock speedup of the batched path at batch size `b`.
    pub fn wall_speedup(&self, b: usize) -> Option<f64> {
        let batched = self.find("batched", b)?;
        let unbatched = self.find("unbatched", b)?;
        Some(unbatched.wall_s / batched.wall_s)
    }

    /// Serializes the report as the `BENCH_planner.json` document.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(
            out,
            "  \"regenerate\": \"cargo run --release -p dlra-bench --bin planner -- --out BENCH_planner.json\","
        );
        let _ = writeln!(
            out,
            "  \"config\": {{\"servers\": {}, \"n\": {}, \"d\": {}, \"r\": {}, \"executors\": {}}},",
            self.spec.servers, self.spec.n, self.spec.d, self.spec.r, self.spec.executors
        );
        let _ = writeln!(out, "  \"outputs_identical\": {},", self.outputs_identical);
        out.push_str("  \"results\": [\n");
        for (i, m) in self.results.iter().enumerate() {
            let comma = if i + 1 == self.results.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"batch\": {}, \"mode\": \"{}\", \"wall_s\": {:.6}, \"preparations\": {}, \"prepare_words\": {}, \"execute_words\": {}, \"total_words\": {}}}{comma}",
                m.batch, m.mode, m.wall_s, m.preparations, m.prepare_words, m.execute_words,
                m.total_words()
            );
        }
        out.push_str("  ],\n");
        out.push_str("  \"summary\": {\n");
        let bmax = self.spec.batch_max();
        let _ = writeln!(
            out,
            "    \"batch_max\": {bmax},\n    \"prepare_words_reduction\": {:.3},\n    \"wall_speedup\": {:.3}",
            self.prepare_reduction(bmax).unwrap_or(0.0),
            self.wall_speedup(bmax).unwrap_or(0.0)
        );
        out.push_str("  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_shares_preparation_and_keeps_bits() {
        let spec = PlannerBenchSpec {
            batches: vec![1, 3],
            servers: 2,
            n: 96,
            d: 8,
            r: 20,
            executors: 2,
            reps: 1,
            seed: 5,
        };
        let report = run(&spec);
        assert_eq!(report.results.len(), 4);
        assert!(report.outputs_identical, "planner changed output bits");

        let batched = report.find("batched", 3).unwrap();
        let unbatched = report.find("unbatched", 3).unwrap();
        // One preparation vs three, with identical per-prepare cost.
        assert_eq!(batched.preparations, 1);
        assert_eq!(unbatched.preparations, 3);
        assert_eq!(unbatched.prepare_words, 3 * batched.prepare_words);
        assert!((report.prepare_reduction(3).unwrap() - 3.0).abs() < 1e-9);
        // Draw/fetch work is per-query either way.
        assert_eq!(batched.execute_words, unbatched.execute_words);

        let json = report.to_json();
        assert!(json.contains("\"outputs_identical\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
