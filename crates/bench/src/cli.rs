//! Tiny argument parsing shared by the figure-reproduction binaries.

use crate::repro::{self, PanelResult, PanelSpec, PoolingSource, RffSource};

/// Parses `--panel <name>`, `--quick`, `--scale N`, `--p a,b,c`,
/// `--ratios a,b,c` from `std::env::args`.
pub fn parse_args() -> (String, PanelSpec, Vec<f64>) {
    let mut panel = "all".to_string();
    let mut spec = PanelSpec::default();
    let mut ps = vec![1.0, 2.0, 5.0, 20.0];
    let mut args = std::env::args().skip(1);
    // Per-panel ratio defaults apply unless overridden.
    spec.ratios = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--panel" => panel = args.next().expect("--panel needs a value"),
            "--quick" => {
                let q = PanelSpec::quick();
                spec.ks = q.ks;
                spec.ratios = q.ratios;
                ps = vec![2.0];
            }
            "--scale" => {
                spec.scale = args
                    .next()
                    .expect("--scale needs a value")
                    .parse()
                    .expect("integer scale")
            }
            "--seed" => {
                spec.seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("integer seed")
            }
            "--p" => {
                ps = args
                    .next()
                    .expect("--p needs a value")
                    .split(',')
                    .map(|x| x.parse().expect("float P"))
                    .collect()
            }
            "--ratios" => {
                spec.ratios = args
                    .next()
                    .expect("--ratios needs a value")
                    .split(',')
                    .map(|x| x.parse().expect("float ratio"))
                    .collect()
            }
            other => panic!("unknown argument {other}"),
        }
    }
    (panel, spec, ps)
}

/// Runs the selected panels.
pub fn panels(which: &str, spec: &PanelSpec, ps: &[f64]) -> Vec<PanelResult> {
    let mut default_ratio_spec = spec.clone();
    if default_ratio_spec.ratios.is_empty() {
        default_ratio_spec.ratios = vec![0.5, 0.25, 0.1];
    }
    let mut out = Vec::new();
    let run_rff = |src| {
        let mut s = spec.clone();
        if s.ratios.is_empty() {
            s.ratios = match src {
                RffSource::ForestCover => vec![0.5, 0.25, 0.1],
                RffSource::Kddcup => vec![0.1, 0.05, 0.01],
            };
        }
        repro::rff_panel(src, &s)
    };
    match which {
        "forest_cover" => out.push(run_rff(RffSource::ForestCover)),
        "kddcup" => out.push(run_rff(RffSource::Kddcup)),
        "caltech101" => {
            for &p in ps {
                out.push(repro::pooling_panel(
                    PoolingSource::Caltech101,
                    p,
                    &default_ratio_spec,
                ));
            }
        }
        "scenes" => {
            for &p in ps {
                out.push(repro::pooling_panel(
                    PoolingSource::Scenes,
                    p,
                    &default_ratio_spec,
                ));
            }
        }
        "isolet" => out.push(repro::isolet_panel(&default_ratio_spec)),
        "all" => {
            out.push(run_rff(RffSource::ForestCover));
            out.push(run_rff(RffSource::Kddcup));
            for &p in ps {
                out.push(repro::pooling_panel(
                    PoolingSource::Caltech101,
                    p,
                    &default_ratio_spec,
                ));
            }
            for &p in ps {
                out.push(repro::pooling_panel(
                    PoolingSource::Scenes,
                    p,
                    &default_ratio_spec,
                ));
            }
            out.push(repro::isolet_panel(&default_ratio_spec));
        }
        other => {
            panic!("unknown panel {other}; try forest_cover|kddcup|caltech101|scenes|isolet|all")
        }
    }
    out
}
