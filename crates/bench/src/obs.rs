//! The `obs` bench: what does observability cost? Dispatches the same
//! minimal-query workload through a [`Service`] with the metrics registry
//! enabled and disabled, and reports the per-query overhead plus the
//! latency distribution (p50/p99 bucket upper bounds) the enabled
//! registry recorded about its own run. Emits the machine-readable
//! `BENCH_obs.json`.
//!
//! The acceptance bar is overhead **< 5%**: the enabled hot path is a
//! handful of relaxed atomic adds and two `Instant` reads per query, so
//! almost all of the measured per-query time is the query itself either
//! way. Outputs are asserted bit-identical between the two modes —
//! observability must never perturb results.

use dlra_core::prelude::*;
use dlra_data::{noisy_low_rank, split_with_noise_shares};
use dlra_linalg::Matrix;
use dlra_obs::metrics::DatasetMetricsSnapshot;
use dlra_runtime::{Query, Service, ServiceConfig, Substrate};
use dlra_util::Rng;
use std::time::Instant;

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct ObsBenchSpec {
    /// Queries dispatched per repetition (sequential submit → wait).
    pub queries: usize,
    /// Resident datasets the service hosts (queries go to the first).
    pub datasets: usize,
    /// Servers holding each dataset.
    pub servers: usize,
    /// Resident dataset shape.
    pub n: usize,
    /// Columns of the resident dataset.
    pub d: usize,
    /// Timed repetitions per mode (the minimum wall is reported).
    pub reps: usize,
    /// Seed for the datasets.
    pub seed: u64,
}

impl Default for ObsBenchSpec {
    fn default() -> Self {
        ObsBenchSpec {
            queries: 256,
            datasets: 4,
            servers: 4,
            n: 1024,
            d: 16,
            reps: 5,
            seed: 0x0B5E_11E7,
        }
    }
}

impl ObsBenchSpec {
    /// Reduced sweep for CI smoke runs.
    pub fn quick() -> Self {
        ObsBenchSpec {
            queries: 32,
            n: 256,
            reps: 2,
            ..ObsBenchSpec::default()
        }
    }
}

/// One mode's measurement.
#[derive(Debug, Clone)]
pub struct ObsMeasurement {
    /// `"metrics_on"` or `"metrics_off"`.
    pub mode: &'static str,
    /// Best wall time for the whole workload over the repetitions, s.
    pub wall_s: f64,
    /// Best per-query mean, nanoseconds.
    pub per_query_ns: f64,
}

/// A completed comparison.
#[derive(Debug, Clone)]
pub struct ObsBenchReport {
    /// Both modes, `metrics_off` first.
    pub results: Vec<ObsMeasurement>,
    /// Registry snapshot of the final metrics-on repetition.
    pub snapshot: DatasetMetricsSnapshot,
    /// Whether both modes produced bit-identical projections.
    pub outputs_identical: bool,
    /// The spec the comparison ran with.
    pub spec: ObsBenchSpec,
}

fn tenant(spec: &ObsBenchSpec, i: usize) -> Vec<Matrix> {
    let mut rng = Rng::new(spec.seed + i as u64);
    let a = noisy_low_rank(spec.n, spec.d, 5, 0.1, &mut rng);
    split_with_noise_shares(&a, spec.servers, 0.3, &mut rng)
}

/// Runs the workload once; returns (wall seconds, projections, snapshot).
fn run_mode(
    spec: &ObsBenchSpec,
    metrics: bool,
) -> (f64, Vec<Vec<f64>>, Option<DatasetMetricsSnapshot>) {
    let mut service = Service::new(ServiceConfig {
        executors: 1,
        substrate: Substrate::Threaded,
        plan_cache: 16,
        metrics,
        ..Default::default()
    });
    let handles: Vec<_> = (0..spec.datasets)
        .map(|i| {
            service
                .load(&format!("tenant-{i}"), tenant(spec, i))
                .unwrap()
        })
        .collect();
    let tiny = Query::rank(1)
        .samples(1)
        .sampler(SamplerKind::Uniform)
        .seed(3)
        .build()
        .expect("valid query");
    let t0 = Instant::now();
    let mut projections = Vec::with_capacity(spec.queries);
    for _ in 0..spec.queries {
        let outcome = handles[0].submit(&tiny).wait().expect("bench query failed");
        projections.push(outcome.output.projection.basis().as_slice().to_vec());
    }
    let wall = t0.elapsed().as_secs_f64();
    let snapshot = service
        .metrics()
        .map(|m| m.datasets.into_iter().next().expect("tenant-0 resident"));
    service.shutdown();
    (wall, projections, snapshot)
}

/// Runs the comparison.
pub fn run(spec: &ObsBenchSpec) -> ObsBenchReport {
    let mut best = [f64::INFINITY; 2]; // [off, on]
    let mut outputs: [Option<Vec<Vec<f64>>>; 2] = [None, None];
    let mut snapshot = None;
    for _ in 0..spec.reps.max(1) {
        // Alternate within each repetition so drift (thermal, cache)
        // hits both modes evenly.
        let (wall_off, out_off, _) = run_mode(spec, false);
        let (wall_on, out_on, snap) = run_mode(spec, true);
        best[0] = best[0].min(wall_off);
        best[1] = best[1].min(wall_on);
        outputs[0].get_or_insert(out_off);
        outputs[1].get_or_insert(out_on);
        snapshot = snap;
    }
    let per_query = |wall: f64| wall / spec.queries as f64 * 1e9;
    let outputs_identical = outputs[0] == outputs[1];
    ObsBenchReport {
        results: vec![
            ObsMeasurement {
                mode: "metrics_off",
                wall_s: best[0],
                per_query_ns: per_query(best[0]),
            },
            ObsMeasurement {
                mode: "metrics_on",
                wall_s: best[1],
                per_query_ns: per_query(best[1]),
            },
        ],
        snapshot: snapshot.expect("metrics-on run produced a snapshot"),
        outputs_identical,
        spec: spec.clone(),
    }
}

impl ObsBenchReport {
    /// Registry overhead as a percentage of the metrics-off per-query
    /// time. Negative values are measurement noise (the enabled run was
    /// not slower than the disabled one).
    pub fn overhead_pct(&self) -> f64 {
        let off = self.results[0].per_query_ns;
        let on = self.results[1].per_query_ns;
        (on - off) / off * 100.0
    }

    /// Serializes the report as the `BENCH_obs.json` document.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(
            out,
            "  \"regenerate\": \"cargo run --release -p dlra-bench --bin obs -- --out BENCH_obs.json\","
        );
        let _ = writeln!(
            out,
            "  \"config\": {{\"queries\": {}, \"datasets\": {}, \"servers\": {}, \"n\": {}, \"d\": {}, \"reps\": {}}},",
            self.spec.queries, self.spec.datasets, self.spec.servers, self.spec.n, self.spec.d,
            self.spec.reps
        );
        let _ = writeln!(out, "  \"outputs_identical\": {},", self.outputs_identical);
        out.push_str("  \"results\": [\n");
        for (i, m) in self.results.iter().enumerate() {
            let comma = if i + 1 == self.results.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"mode\": \"{}\", \"wall_s\": {:.6}, \"per_query_ns\": {:.0}}}{comma}",
                m.mode, m.wall_s, m.per_query_ns
            );
        }
        out.push_str("  ],\n");
        let p50 = self.snapshot.latency.p50_micros().unwrap_or(0);
        let p99 = self.snapshot.latency.p99_micros().unwrap_or(0);
        let _ = writeln!(
            out,
            "  \"summary\": {{\n    \"overhead_pct\": {:.2},\n    \"latency_p50_le_micros\": {p50},\n    \"latency_p99_le_micros\": {p99},\n    \"queries_completed\": {}\n  }}\n}}",
            self.overhead_pct(),
            self.snapshot.completed
        );
        out
    }
}
