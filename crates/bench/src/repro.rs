//! Reproduction of the paper's Figures 1 and 2 (§VIII).
//!
//! Each *panel* matches one subplot: a dataset (+ pooling parameter where
//! applicable), swept over projection dimension `k ∈ {3,6,9,12,15}` and a
//! set of communication-ratio budgets. A cell runs the full distributed
//! protocol under that budget and reports
//!
//! * additive error `|‖A−AP‖² − ‖A−[A]ₖ‖²| / ‖A‖²` (Figure 1),
//! * the prediction `k²/r` (Figure 1's dashed lines),
//! * relative error `‖A−AP‖² / ‖A−[A]ₖ‖²` (Figure 2),
//! * the achieved communication ratio.
//!
//! The Z-sampler preparation (two estimator passes) is `k`-independent, so
//! each ratio's preparation is run once and its cost included in every
//! cell, exactly as if each cell had run it privately.

use dlra_core::algorithm1::fetch_global_rows;
use dlra_core::apps::rff::{run_rff_pca, RffMap};
use dlra_core::fkv::{build_b_matrix, fkv_projection};
use dlra_core::metrics::predicted_additive_error;
use dlra_core::{EntryFunction, PartitionModel};
use dlra_data as data;
use dlra_linalg::{svd, Matrix, Projector, Svd};
use dlra_sampler::{ZSampler, ZSamplerParams};
use dlra_util::Rng;

/// Sweep configuration for one panel.
#[derive(Debug, Clone)]
pub struct PanelSpec {
    /// Projection dimensions (paper: 3, 6, 9, 12, 15).
    pub ks: Vec<usize>,
    /// Communication-ratio budgets (paper: {0.5, 0.25, 0.1}, or
    /// {0.1, 0.05, 0.01} for KDDCUP99).
    pub ratios: Vec<f64>,
    /// Dataset scale multiplier.
    pub scale: usize,
    /// Root seed.
    pub seed: u64,
}

impl Default for PanelSpec {
    fn default() -> Self {
        PanelSpec {
            ks: vec![3, 6, 9, 12, 15],
            ratios: vec![0.5, 0.25, 0.1],
            scale: 1,
            seed: 0xF16_F16,
        }
    }
}

impl PanelSpec {
    /// A reduced sweep for smoke tests and CI.
    pub fn quick() -> Self {
        PanelSpec {
            ks: vec![3, 9],
            ratios: vec![0.25],
            scale: 1,
            seed: 0xF16_F16,
        }
    }
}

/// One cell of a panel.
#[derive(Debug, Clone, Copy)]
pub struct PanelRow {
    /// Projection dimension.
    pub k: usize,
    /// Target communication ratio.
    pub ratio: f64,
    /// Rows sampled under this budget.
    pub r: usize,
    /// Figure 1 y-value.
    pub additive_error: f64,
    /// Figure 1 dashed line `k²/r`.
    pub predicted: f64,
    /// Figure 2 y-value.
    pub relative_error: f64,
    /// Protocol words actually used for this cell.
    pub comm_words: u64,
    /// Sum of local data sizes (ratio denominator).
    pub data_words: u64,
}

impl PanelRow {
    /// Achieved communication ratio.
    pub fn achieved_ratio(&self) -> f64 {
        self.comm_words as f64 / self.data_words as f64
    }
}

/// A completed panel.
#[derive(Debug, Clone)]
pub struct PanelResult {
    /// Panel label as in the paper (e.g. `Caltech-101(P=5)`).
    pub name: String,
    /// Rows in `(ratio, k)` sweep order.
    pub rows: Vec<PanelRow>,
}

/// Which RFF panel (Figure 1/2, top row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RffSource {
    /// Forest Cover: ratios {0.5, 0.25, 0.1}, 10 servers.
    ForestCover,
    /// KDDCUP99: ratios {0.1, 0.05, 0.01}, 50 servers.
    Kddcup,
}

/// Which pooled-codes panel family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolingSource {
    /// Caltech-101: 50 servers.
    Caltech101,
    /// Scenes: 10 servers.
    Scenes,
}

struct Truth {
    svd: Svd,
    matrix: Matrix,
    total_sq: f64,
}

impl Truth {
    fn new(matrix: Matrix) -> Self {
        let svd = svd(&matrix).expect("truth SVD");
        let total_sq = matrix.frobenius_norm_sq();
        Truth {
            svd,
            matrix,
            total_sq,
        }
    }

    fn cell(&self, k: usize, r: usize, projection: &Projector) -> (f64, f64, f64) {
        let res = projection.residual_sq(&self.matrix).expect("residual");
        let best = self.svd.tail_energy(k);
        let additive = if self.total_sq > 0.0 {
            (res - best).abs() / self.total_sq
        } else {
            0.0
        };
        let relative = if best > 1e-12 * self.total_sq.max(1e-300) {
            res / best
        } else {
            1.0
        };
        (additive, relative, predicted_additive_error(k, r))
    }
}

/// Figure 1/2 RFF panels (Forest Cover, KDDCUP99): uniform sampling of raw
/// rows, expansion at the coordinator.
pub fn rff_panel(src: RffSource, spec: &PanelSpec) -> PanelResult {
    let (ds, feat_dim, bandwidth, ratios_default) = match src {
        RffSource::ForestCover => (
            data::forest_cover_like(spec.scale, spec.seed),
            128usize,
            2.0,
            vec![0.5, 0.25, 0.1],
        ),
        RffSource::Kddcup => (
            data::kddcup_like(spec.scale, spec.seed ^ 1),
            64usize,
            2.0,
            vec![0.1, 0.05, 0.01],
        ),
    };
    let ratios = if spec.ratios.is_empty() {
        ratios_default
    } else {
        spec.ratios.clone()
    };
    let name = match src {
        RffSource::ForestCover => "ForestCover".to_string(),
        RffSource::Kddcup => "KDDCUP99".to_string(),
    };
    let raw_dims = ds.parts[0].cols();
    let n = ds.parts[0].rows();
    let s = ds.parts.len();
    let mut model = PartitionModel::new(ds.parts, EntryFunction::Identity).expect("model");
    let data_words = model.total_local_words();
    let map = RffMap::new(raw_dims, feat_dim, bandwidth, spec.seed ^ 0xFEA7);
    let truth = Truth::new(map.expand_matrix(&model.global_matrix()));
    let kmax = spec.ks.iter().copied().max().unwrap_or(15);

    let mut rows = Vec::new();
    for &ratio in &ratios {
        // Entire budget goes to raw-row collection:
        // cost ≈ (s−1)·r·(m+2) words.
        let budget = ratio * data_words as f64;
        let r = ((budget / ((s - 1) as f64 * (raw_dims + 2) as f64)) as usize).clamp(2 * kmax, n);
        for (ki, &k) in spec.ks.iter().enumerate() {
            let out = run_rff_pca(
                &mut model,
                &map,
                k,
                r,
                spec.seed ^ (ki as u64) << 8 ^ (ratio * 1000.0) as u64,
            )
            .expect("rff run");
            let (additive, relative, predicted) = truth.cell(k, r, &out.projection);
            rows.push(PanelRow {
                k,
                ratio,
                r,
                additive_error: additive,
                predicted,
                relative_error: relative,
                comm_words: out.comm.total_words(),
                data_words,
            });
        }
    }
    PanelResult { name, rows }
}

/// Figure 1/2 pooled-codes panels (Caltech-101 / Scenes at a given P):
/// GM pooling with the generalized Z-sampler.
pub fn pooling_panel(src: PoolingSource, p: f64, spec: &PanelSpec) -> PanelResult {
    let (parts, label) = match src {
        PoolingSource::Caltech101 => (
            data::caltech101_like(spec.scale, spec.seed ^ 2).parts,
            "Caltech-101",
        ),
        PoolingSource::Scenes => (data::scenes_like(spec.scale, spec.seed ^ 3).parts, "Scenes"),
    };
    let mut model = PartitionModel::gm_pooling(parts, p).expect("pooling model");
    let name = format!("{label}(P={p})");
    let truth = Truth::new(model.global_matrix());
    z_panel(&mut model, truth, name, spec)
}

/// Figure 1/2 isolet panel: robust PCA with the Huber ψ, outliers hidden by
/// an entrywise partition.
pub fn isolet_panel(spec: &PanelSpec) -> PanelResult {
    let ds = data::isolet_like(spec.scale, 50, spec.seed ^ 4);
    // Threshold well above benign magnitudes, far below the corruption.
    let mut model = PartitionModel::new(ds.parts, EntryFunction::Huber { k: 25.0 }).expect("model");
    let truth = Truth::new(model.global_matrix());
    z_panel(&mut model, truth, "isolet".to_string(), spec)
}

/// Shared Z-sampler sweep: one sampler preparation per ratio, reused across
/// `k` (the preparation is k-independent); each cell's reported cost
/// includes the full preparation.
fn z_panel(
    model: &mut PartitionModel,
    truth: Truth,
    name: String,
    spec: &PanelSpec,
) -> PanelResult {
    let (n, d) = model.shape();
    let s = model.num_servers();
    let data_words = model.total_local_words();
    let zfn = model
        .entry_function()
        .z_fn()
        .expect("property-P z exists for panel functions");
    let kmax = spec.ks.iter().copied().max().unwrap_or(15);
    let mut rows = Vec::new();

    for &ratio in &spec.ratios {
        let budget = ratio * data_words as f64;
        // 40% of the budget on row collection, 60% on the sampler.
        let r = ((0.4 * budget / ((s - 1) as f64 * d as f64)) as usize).clamp(2 * kmax, n);
        let sampler_budget = (0.6 * budget / (s as f64 * 2.0)) as u64;
        let params = ZSamplerParams::practical((n * d) as u64, sampler_budget.max(512));

        let before_prepare = model.cluster().comm();
        let sampler = ZSampler::new(params, spec.seed ^ (ratio * 1e4) as u64);
        let prepared = sampler.prepare(model.cluster_mut(), zfn.as_ref());
        let prepare_words = model.cluster().comm().since(&before_prepare).total_words();
        assert!(!prepared.is_empty(), "{name}: sampler found no mass");

        for (ki, &k) in spec.ks.iter().enumerate() {
            let mut rng = Rng::new(spec.seed ^ 0xCE11 ^ ((ki as u64) << 16));
            let draws = prepared.draw_many(r, &mut rng);
            let before_fetch = model.cluster().comm();
            let indices: Vec<usize> = draws.iter().map(|dr| dr.coord as usize / d).collect();
            let fetched = fetch_global_rows(model, &indices).expect("fetch");
            let fetch_words = model.cluster().comm().since(&before_fetch).total_words();

            let z_hat = prepared.z_hat();
            let sampled: Vec<_> = fetched
                .into_iter()
                .map(|row| {
                    let zmass: f64 = row.raw.iter().map(|&x| zfn.z(x)).sum();
                    row.into_sampled((zmass / z_hat).min(1.0))
                })
                .collect();
            let b = build_b_matrix(&sampled).expect("B");
            let (projection, _) = fkv_projection(&b, k).expect("projection");
            let (additive, relative, predicted) = truth.cell(k, sampled.len(), &projection);
            rows.push(PanelRow {
                k,
                ratio,
                r: sampled.len(),
                additive_error: additive,
                predicted,
                relative_error: relative,
                comm_words: prepare_words + fetch_words,
                data_words,
            });
        }
    }
    PanelResult { name, rows }
}

/// Renders a panel as the textual analogue of a figure subplot.
pub fn render_panel(panel: &PanelResult, figure: u8) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "── {} ──", panel.name);
    match figure {
        1 => {
            let _ = writeln!(
                out,
                "{:>4} {:>7} {:>6} {:>13} {:>13} {:>9}",
                "k", "ratio", "r", "additive", "prediction", "achieved"
            );
            for row in &panel.rows {
                let _ = writeln!(
                    out,
                    "{:>4} {:>7.3} {:>6} {:>13.4e} {:>13.4e} {:>9.4}",
                    row.k,
                    row.ratio,
                    row.r,
                    row.additive_error,
                    row.predicted,
                    row.achieved_ratio()
                );
            }
        }
        _ => {
            let _ = writeln!(
                out,
                "{:>4} {:>7} {:>6} {:>13} {:>9}",
                "k", "ratio", "r", "relative", "achieved"
            );
            for row in &panel.rows {
                let _ = writeln!(
                    out,
                    "{:>4} {:>7.3} {:>6} {:>13.6} {:>9.4}",
                    row.k,
                    row.ratio,
                    row.r,
                    row.relative_error,
                    row.achieved_ratio()
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_rff_panel_shapes_hold() {
        let spec = PanelSpec {
            ks: vec![3, 9],
            ratios: vec![0.25],
            scale: 1,
            seed: 1,
        };
        let panel = rff_panel(RffSource::ForestCover, &spec);
        assert_eq!(panel.rows.len(), 2);
        for row in &panel.rows {
            // Actual error beats the paper's prediction (Figure 1's shape).
            assert!(
                row.additive_error < row.predicted,
                "k={}: {} ≥ {}",
                row.k,
                row.additive_error,
                row.predicted
            );
            // Relative error near 1 for flat RFF spectra (Figure 2's shape).
            assert!(row.relative_error < 1.5, "relative {}", row.relative_error);
        }
    }

    #[test]
    fn quick_pooling_panel_runs() {
        let spec = PanelSpec {
            ks: vec![3],
            ratios: vec![0.5],
            scale: 1,
            seed: 2,
        };
        let panel = pooling_panel(PoolingSource::Scenes, 2.0, &spec);
        assert_eq!(panel.rows.len(), 1);
        let row = &panel.rows[0];
        assert!(row.additive_error < row.predicted);
        assert!(row.comm_words > 0);
    }

    #[test]
    fn render_contains_all_cells() {
        let panel = PanelResult {
            name: "x".into(),
            rows: vec![PanelRow {
                k: 3,
                ratio: 0.5,
                r: 10,
                additive_error: 0.1,
                predicted: 0.9,
                relative_error: 1.2,
                comm_words: 100,
                data_words: 1000,
            }],
        };
        let f1 = render_panel(&panel, 1);
        assert!(f1.contains("additive"));
        let f2 = render_panel(&panel, 2);
        assert!(f2.contains("relative"));
    }
}
