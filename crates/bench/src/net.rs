//! The `net` bench: the threaded in-process substrate vs real loopback
//! TCP at growing cluster sizes. Emits the machine-readable
//! `BENCH_net.json`.
//!
//! Every cell runs the full Algorithm 1 protocol (Z-sampler) at one
//! `(s, substrate)` pair — `ThreadedCluster` over typed channels and
//! `SocketCluster` over length-prefixed frames on loopback sockets —
//! against a sequential reference at the same `s`. Per cell the sweep
//! reports p50/p99 query latency over the repetitions, the word-exact
//! communication ledger, and (for the socket cells) the actual bytes that
//! crossed the sockets, reconciled against the ledger on the spot: data
//! body bytes must equal `8 × (words − FRAME_WORDS × messages)` with zero
//! unexplained bytes, the same identity the `dlra-net` wire-audit tests
//! prove. Outputs are asserted bit-identical to the sequential reference
//! per cell, so the latency column isolates pure transport cost.

use dlra_comm::ledger::FRAME_WORDS;
use dlra_core::prelude::*;
use dlra_data::{noisy_low_rank, split_with_noise_shares};
use dlra_linalg::Matrix;
use dlra_net::SocketCluster;
use dlra_runtime::ThreadedCluster;
use dlra_sampler::ZSamplerParams;
use std::time::Instant;

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct NetBenchSpec {
    /// Cluster sizes `s` to measure.
    pub servers: Vec<usize>,
    /// Rows of the resident dataset.
    pub n: usize,
    /// Columns of the resident dataset.
    pub d: usize,
    /// Sample count per query.
    pub r: usize,
    /// Timed repetitions per cell (latency percentiles come from these).
    pub reps: usize,
    /// Seed for the dataset and the query.
    pub seed: u64,
}

impl Default for NetBenchSpec {
    fn default() -> Self {
        NetBenchSpec {
            servers: vec![4, 16, 64],
            n: 512,
            d: 16,
            r: 40,
            reps: 5,
            seed: 0x6e_e7_01,
        }
    }
}

impl NetBenchSpec {
    /// Reduced sweep for CI smoke runs — smaller data, fewer repetitions,
    /// and the tail of the `s` axis trimmed.
    pub fn quick() -> Self {
        NetBenchSpec {
            servers: vec![4, 16],
            n: 128,
            d: 8,
            r: 16,
            reps: 2,
            ..NetBenchSpec::default()
        }
    }

    fn servers_max(&self) -> usize {
        self.servers.iter().copied().max().unwrap_or(1)
    }
}

/// Socket-only byte accounting for one cell (the threaded substrate moves
/// no bytes — its "wire" is an in-process channel).
#[derive(Debug, Clone, Copy)]
pub struct WireCell {
    /// Every byte the query pushed through a socket (headers, descriptors,
    /// bodies, control frames).
    pub total_bytes: u64,
    /// Ledger-charged frames sent during the query.
    pub data_frames: u64,
    /// Wire bytes per ledger word (`total_bytes / total_words`).
    pub bytes_per_word: f64,
    /// Whether the byte/word reconciliation held exactly:
    /// `data_frames == messages` and
    /// `data_body_bytes == 8 × (words − FRAME_WORDS × messages)`.
    pub audit_exact: bool,
}

/// One measured cell: one (s, substrate) pair.
#[derive(Debug, Clone)]
pub struct NetMeasurement {
    /// Cluster size `s`.
    pub servers: usize,
    /// `threaded` or `socket`.
    pub substrate: &'static str,
    /// Median query latency over the repetitions, seconds.
    pub p50_s: f64,
    /// p99 query latency over the repetitions, seconds.
    pub p99_s: f64,
    /// Total words the ledger charged for one query.
    pub total_words: u64,
    /// Messages the ledger charged for one query.
    pub messages: u64,
    /// Byte accounting (socket cells only).
    pub wire: Option<WireCell>,
    /// Whether this cell's output was bit-identical to the sequential
    /// reference at the same `s`.
    pub outputs_identical: bool,
}

/// A completed sweep.
#[derive(Debug, Clone)]
pub struct NetBenchReport {
    /// All measured cells, threaded and socket per cluster size.
    pub results: Vec<NetMeasurement>,
    /// Whether every cell matched the sequential reference bit for bit.
    pub outputs_identical: bool,
    /// Whether every socket cell's byte/word reconciliation held exactly.
    pub wire_audit_exact: bool,
    /// The spec the sweep ran with.
    pub spec: NetBenchSpec,
}

fn shares(spec: &NetBenchSpec, s: usize) -> Vec<Matrix> {
    let mut rng = dlra_util::Rng::new(spec.seed);
    let a = noisy_low_rank(spec.n, spec.d, 5, 0.1, &mut rng);
    split_with_noise_shares(&a, s, 0.3, &mut rng)
}

fn cfg(spec: &NetBenchSpec) -> Algorithm1Config {
    Algorithm1Config {
        k: 3,
        r: spec.r,
        sampler: SamplerKind::Z(ZSamplerParams::default()),
        seed: spec.seed ^ 0x51,
        ..Default::default()
    }
}

/// Index-nearest percentile of an already-sorted sample vector.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((q / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn identical(a: &Algorithm1Output, b: &Algorithm1Output) -> bool {
    a.projection.basis().as_slice() == b.projection.basis().as_slice()
        && a.rows == b.rows
        && a.captured.to_bits() == b.captured.to_bits()
}

/// Runs the threaded cell: fresh model per repetition (construction is
/// untimed; the clock covers only the query).
fn run_threaded(
    parts: &[Matrix],
    cfg: &Algorithm1Config,
    reps: usize,
) -> (Vec<f64>, Algorithm1Output) {
    let mut samples = Vec::new();
    let mut kept: Option<Algorithm1Output> = None;
    for _ in 0..reps.max(1) {
        let mut model =
            PartitionModel::with_substrate(parts.to_vec(), EntryFunction::Identity, |locals| {
                ThreadedCluster::new(locals)
            })
            .expect("bench model");
        let t0 = Instant::now();
        let out = run_algorithm1(&mut model, cfg).expect("bench query failed");
        samples.push(t0.elapsed().as_secs_f64());
        kept.get_or_insert(out);
    }
    (samples, kept.expect("reps >= 1"))
}

/// Runs the socket cell. Bootstrap happens at construction, outside the
/// clock; the wire delta is snapshotted around the first query so the
/// reported bytes are exactly one query's traffic.
fn run_socket(
    parts: &[Matrix],
    cfg: &Algorithm1Config,
    reps: usize,
) -> (Vec<f64>, Algorithm1Output, dlra_net::WireStats) {
    let mut samples = Vec::new();
    let mut kept: Option<(Algorithm1Output, dlra_net::WireStats)> = None;
    for _ in 0..reps.max(1) {
        let mut model =
            PartitionModel::with_substrate(parts.to_vec(), EntryFunction::Identity, |locals| {
                SocketCluster::new(locals)
            })
            .expect("bench model");
        let before = model.cluster().wire_stats();
        let t0 = Instant::now();
        let out = run_algorithm1(&mut model, cfg).expect("bench query failed");
        samples.push(t0.elapsed().as_secs_f64());
        let delta = model.cluster().wire_stats().since(&before);
        kept.get_or_insert((out, delta));
    }
    let (out, delta) = kept.expect("reps >= 1");
    (samples, out, delta)
}

/// Runs the sweep.
pub fn run(spec: &NetBenchSpec) -> NetBenchReport {
    let cfg = cfg(spec);
    let mut results = Vec::new();
    let mut outputs_identical = true;
    let mut wire_audit_exact = true;
    for &s in &spec.servers {
        let parts = shares(spec, s);
        let mut reference =
            PartitionModel::new(parts.clone(), EntryFunction::Identity).expect("reference model");
        let want = run_algorithm1(&mut reference, &cfg).expect("reference query failed");

        let (mut thr_samples, thr_out) = run_threaded(&parts, &cfg, spec.reps);
        thr_samples.sort_by(f64::total_cmp);
        let thr_ok = identical(&want, &thr_out) && thr_out.comm == want.comm;
        outputs_identical &= thr_ok;
        results.push(NetMeasurement {
            servers: s,
            substrate: "threaded",
            p50_s: percentile(&thr_samples, 50.0),
            p99_s: percentile(&thr_samples, 99.0),
            total_words: thr_out.comm.total_words(),
            messages: thr_out.comm.messages,
            wire: None,
            outputs_identical: thr_ok,
        });

        let (mut skt_samples, skt_out, delta) = run_socket(&parts, &cfg, spec.reps);
        skt_samples.sort_by(f64::total_cmp);
        let skt_ok = identical(&want, &skt_out) && skt_out.comm == want.comm;
        outputs_identical &= skt_ok;
        let words = skt_out.comm.total_words();
        let messages = skt_out.comm.messages;
        let audit_exact = delta.data_frames == messages
            && delta.data_body_bytes == 8 * (words - FRAME_WORDS * messages);
        wire_audit_exact &= audit_exact;
        results.push(NetMeasurement {
            servers: s,
            substrate: "socket",
            p50_s: percentile(&skt_samples, 50.0),
            p99_s: percentile(&skt_samples, 99.0),
            total_words: words,
            messages,
            wire: Some(WireCell {
                total_bytes: delta.total_bytes(),
                data_frames: delta.data_frames,
                bytes_per_word: delta.total_bytes() as f64 / words.max(1) as f64,
                audit_exact,
            }),
            outputs_identical: skt_ok,
        });
    }
    NetBenchReport {
        results,
        outputs_identical,
        wire_audit_exact,
        spec: spec.clone(),
    }
}

impl NetBenchReport {
    fn find(&self, substrate: &str, servers: usize) -> Option<&NetMeasurement> {
        self.results
            .iter()
            .find(|m| m.substrate == substrate && m.servers == servers)
    }

    /// Socket p50 latency as a multiple of threaded p50 at cluster size
    /// `s` — the pure transport overhead of real sockets.
    pub fn socket_overhead(&self, s: usize) -> Option<f64> {
        let thr = self.find("threaded", s)?;
        let skt = self.find("socket", s)?;
        (thr.p50_s > 0.0).then(|| skt.p50_s / thr.p50_s)
    }

    /// Wire bytes per ledger word at cluster size `s`.
    pub fn bytes_per_word(&self, s: usize) -> Option<f64> {
        Some(self.find("socket", s)?.wire?.bytes_per_word)
    }

    /// Serializes the report as the `BENCH_net.json` document.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(
            out,
            "  \"regenerate\": \"cargo run --release -p dlra-bench --bin net -- --out BENCH_net.json\","
        );
        let _ = writeln!(
            out,
            "  \"config\": {{\"n\": {}, \"d\": {}, \"r\": {}, \"reps\": {}}},",
            self.spec.n, self.spec.d, self.spec.r, self.spec.reps
        );
        let _ = writeln!(out, "  \"outputs_identical\": {},", self.outputs_identical);
        let _ = writeln!(out, "  \"wire_audit_exact\": {},", self.wire_audit_exact);
        out.push_str("  \"results\": [\n");
        for (i, m) in self.results.iter().enumerate() {
            let comma = if i + 1 == self.results.len() { "" } else { "," };
            let wire = match &m.wire {
                Some(w) => format!(
                    "{{\"total_bytes\": {}, \"data_frames\": {}, \"bytes_per_word\": {:.3}, \"audit_exact\": {}}}",
                    w.total_bytes, w.data_frames, w.bytes_per_word, w.audit_exact
                ),
                None => "null".to_string(),
            };
            let _ = writeln!(
                out,
                "    {{\"servers\": {}, \"substrate\": \"{}\", \"p50_s\": {:.6}, \"p99_s\": {:.6}, \"total_words\": {}, \"messages\": {}, \"wire\": {wire}, \"outputs_identical\": {}}}{comma}",
                m.servers, m.substrate, m.p50_s, m.p99_s, m.total_words, m.messages,
                m.outputs_identical
            );
        }
        out.push_str("  ],\n");
        out.push_str("  \"summary\": {\n");
        let smax = self.spec.servers_max();
        let _ = writeln!(
            out,
            "    \"servers_max\": {smax},\n    \"socket_p50_over_threaded_p50\": {:.3},\n    \"wire_bytes_per_ledger_word\": {:.3}",
            self.socket_overhead(smax).unwrap_or(0.0),
            self.bytes_per_word(smax).unwrap_or(0.0)
        );
        out.push_str("  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_keeps_bits_and_reconciles_every_byte() {
        let spec = NetBenchSpec {
            servers: vec![2, 3],
            n: 96,
            d: 8,
            r: 20,
            reps: 1,
            seed: 5,
        };
        let report = run(&spec);
        assert_eq!(report.results.len(), 4);
        assert!(report.outputs_identical, "substrate changed output bits");
        assert!(report.wire_audit_exact, "unexplained bytes on the wire");
        for &s in &spec.servers {
            let thr = report.find("threaded", s).unwrap();
            let skt = report.find("socket", s).unwrap();
            assert_eq!(
                thr.total_words, skt.total_words,
                "substrates must charge identical ledgers at s = {s}"
            );
            let wire = skt.wire.expect("socket cells carry byte accounting");
            assert!(wire.audit_exact);
            assert!(
                wire.total_bytes > 8 * skt.total_words,
                "wire bytes must exceed raw payload (headers + control)"
            );
            assert!(thr.wire.is_none());
        }
        assert!(report.bytes_per_word(3).unwrap() > 8.0);

        let json = report.to_json();
        assert!(json.contains("\"outputs_identical\": true"));
        assert!(json.contains("\"wire_audit_exact\": true"));
        assert!(json.contains("\"wire\": null"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn percentiles_pick_sane_indices() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&sorted, 50.0), 3.0);
        assert_eq!(percentile(&sorted, 99.0), 5.0);
        assert_eq!(percentile(&sorted[..1], 99.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }
}
