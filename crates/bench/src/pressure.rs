//! The `pressure` bench: proof that the [`Service`] self-regulates under
//! saturation. A sentinel query pins one executor and the primary tenant,
//! then each wave submits an **open-loop** arrival schedule at a multiple
//! of the measured closed-loop capacity — the arrival clock never waits
//! for completions, exactly like an outside client storm. Rotating spill
//! tenants are loaded throughout to keep the memory quota under fire.
//! Emits the machine-readable `BENCH_pressure.json`.
//!
//! What bounded self-regulation must look like, and what the binary
//! asserts before writing the document:
//!
//! * **bounded queue** — the in-system gauge never exceeds the configured
//!   admission bound, at any multiplier;
//! * **bounded latency** — admitted p99 stays within a small multiple of
//!   the closed-loop service time (the queue bound caps the wait), instead
//!   of growing linearly with the arrival backlog as an unbounded queue
//!   would;
//! * **typed fast-fail** — overflow submissions resolve to
//!   [`dlra_runtime::ServiceError::Overloaded`] inside the submit call itself, in
//!   microseconds, with zero untyped outcomes anywhere;
//! * **bounded memory** — resident bytes never exceed the budget by more
//!   than one in-flight spill payload (a load's bytes land and the sweep
//!   reclaims them under one lock; a concurrent reader can glimpse the
//!   hand-off), and the quota sweep actually fires.

use dlra_core::prelude::*;
use dlra_data::{noisy_low_rank, split_with_noise_shares};
use dlra_linalg::Matrix;
use dlra_runtime::{Query, Service, ServiceConfig, Substrate, Ticket};
use dlra_util::Rng;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct PressureSpec {
    /// Executor threads; one is occupied by the sentinel for the whole
    /// run, so effective capacity comes from `executors - 1`.
    pub executors: usize,
    /// Servers holding the primary dataset.
    pub servers: usize,
    /// Rows of the primary dataset.
    pub n: usize,
    /// Columns of the primary dataset.
    pub d: usize,
    /// Closed-loop queries used to measure capacity.
    pub probe: usize,
    /// Open-loop submissions per wave.
    pub wave: usize,
    /// Arrival-rate multipliers over measured capacity, one wave each.
    pub multipliers: Vec<f64>,
    /// Admission bound (queued + executing, sentinel included).
    pub max_queue: u64,
    /// Load a spill tenant every this many submissions.
    pub spill_every: usize,
    /// Seed for the datasets.
    pub seed: u64,
}

/// Bytes of one rotating spill tenant (2 servers × 32×16 doubles).
pub const SPILL_BYTES: u64 = 2 * 32 * 16 * 8;

impl Default for PressureSpec {
    fn default() -> Self {
        PressureSpec {
            executors: 3,
            servers: 4,
            n: 256,
            d: 16,
            probe: 64,
            wave: 256,
            multipliers: vec![2.0, 4.0, 10.0],
            max_queue: 8,
            spill_every: 16,
            seed: 0x9E55_0E5A,
        }
    }
}

impl PressureSpec {
    /// Reduced sweep for CI smoke runs (the 4× wave the acceptance bar
    /// names stays in).
    pub fn quick() -> Self {
        PressureSpec {
            probe: 24,
            wave: 96,
            ..PressureSpec::default()
        }
    }

    /// Primary-tenant footprint in bytes.
    pub fn primary_bytes(&self) -> u64 {
        (self.servers * self.n * self.d * 8) as u64
    }

    /// The memory budget: the pinned primary plus two resident spill
    /// tenants — the third spill load forces the quota sweep.
    pub fn budget(&self) -> u64 {
        self.primary_bytes() + 2 * SPILL_BYTES + 1024
    }
}

/// One open-loop wave's measurement.
#[derive(Debug, Clone)]
pub struct WaveMeasurement {
    /// Arrival-rate multiplier over measured capacity.
    pub multiplier: f64,
    /// Open-loop submissions issued.
    pub submitted: usize,
    /// Admitted and completed `Ok`.
    pub admitted_ok: usize,
    /// Shed at admission with [`dlra_runtime::ServiceError::Overloaded`].
    pub shed: usize,
    /// Any other outcome (must be zero — nothing untyped, nothing lost).
    pub other: usize,
    /// Admitted end-to-end latency, p50 seconds.
    pub admitted_p50_s: f64,
    /// Admitted end-to-end latency, p99 seconds.
    pub admitted_p99_s: f64,
    /// Shed fast-fail p99: the whole submit call, microseconds.
    pub shed_submit_p99_micros: f64,
    /// Peak of the in-system gauge sampled after every submission.
    pub max_in_system: u64,
    /// Peak resident bytes sampled after every submission.
    pub max_resident_bytes: u64,
    /// Quota evictions the wave's spill loads triggered.
    pub quota_evictions: u64,
    /// In-system gauge after the wave fully drained (the sentinel's one
    /// admission — anything above it leaked).
    pub drained_in_system: u64,
}

/// A completed saturation run.
#[derive(Debug, Clone)]
pub struct PressureReport {
    /// Closed-loop mean service time, seconds.
    pub probe_mean_s: f64,
    /// Measured capacity, queries/second, on `executors - 1` executors.
    pub capacity_qps: f64,
    /// The waves, in multiplier order.
    pub waves: Vec<WaveMeasurement>,
    /// The spec the run used.
    pub spec: PressureSpec,
}

fn primary(spec: &PressureSpec) -> Vec<Matrix> {
    let mut rng = Rng::new(spec.seed);
    let a = noisy_low_rank(spec.n, spec.d, 5, 0.1, &mut rng);
    split_with_noise_shares(&a, spec.servers, 0.3, &mut rng)
}

fn spill(spec: &PressureSpec, i: usize) -> Vec<Matrix> {
    let mut rng = Rng::new(spec.seed ^ (0xD00D + i as u64));
    let a = noisy_low_rank(32, 16, 2, 0.1, &mut rng);
    split_with_noise_shares(&a, 2, 0.3, &mut rng)
}

fn wave_query(spec: &PressureSpec) -> Query {
    Query::rank(2)
        .samples(8)
        .sampler(SamplerKind::Uniform)
        .seed(spec.seed)
        .build()
        .expect("valid wave query")
}

/// `q`-quantile of an unsorted sample (nearest-rank on the sorted copy).
fn quantile(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let idx = ((samples.len() - 1) as f64 * q).round() as usize;
    samples[idx]
}

/// Spins until `at` (the intervals are far below sleep granularity).
fn pace(at: Instant) {
    while Instant::now() < at {
        std::hint::spin_loop();
    }
}

/// Runs the saturation sweep.
pub fn run(spec: &PressureSpec) -> PressureReport {
    let mut service = Service::new(ServiceConfig {
        executors: spec.executors,
        substrate: Substrate::Threaded,
        plan_cache: 0,
        metrics: true,
        max_queue_depth: Some(spec.max_queue as usize),
        memory_budget: Some(spec.budget()),
        ..Default::default()
    });
    let handle = service
        .load("primary", primary(spec))
        .expect("load primary");

    // The sentinel occupies one executor and pins the primary tenant for
    // the whole run: the quota sweep can only ever pick spill tenants.
    let sentinel = handle.submit(
        &Query::rank(2)
            .samples(8)
            .sampler(SamplerKind::Uniform)
            .boosted(2_000_000_000)
            .seed(spec.seed)
            .build()
            .expect("valid sentinel query"),
    );
    assert!(!sentinel.shed(), "the first admission cannot shed");
    while !sentinel.started() {
        std::thread::yield_now();
    }

    // Closed-loop capacity probe: one query in flight at a time, so the
    // mean is the pure service time and capacity is executors-1 over it.
    let query = wave_query(spec);
    for _ in 0..spec.probe.div_ceil(4) {
        let _ = handle.submit(&query).wait().expect("warmup query");
    }
    let t0 = Instant::now();
    for _ in 0..spec.probe {
        let _ = handle.submit(&query).wait().expect("probe query");
    }
    let probe_mean_s = t0.elapsed().as_secs_f64() / spec.probe as f64;
    let effective = (spec.executors - 1).max(1) as f64;
    let capacity_qps = effective / probe_mean_s;

    let mut spill_counter = 0usize;
    let mut waves = Vec::with_capacity(spec.multipliers.len());
    for &multiplier in &spec.multipliers {
        let interval = Duration::from_secs_f64(1.0 / (multiplier * capacity_qps));
        let evictions_before = service.pressure().evicted_under_pressure;

        let mut shed_submit_micros: Vec<f64> = Vec::new();
        let mut admitted_s: Vec<f64> = Vec::new();
        let mut shed = 0usize;
        let mut admitted_ok = 0usize;
        let mut other = 0usize;
        let mut max_in_system = 0u64;
        let mut max_resident = 0u64;

        std::thread::scope(|scope| {
            let (tx, rx) = mpsc::channel::<(Instant, Ticket)>();
            // The collector drains resolutions concurrently with the
            // arrival schedule, timestamping each admitted completion.
            let collector = scope.spawn(move || {
                let mut ok = 0usize;
                let mut other = 0usize;
                let mut latencies = Vec::new();
                while let Ok((submitted, ticket)) = rx.recv() {
                    match ticket.wait() {
                        Ok(_) => {
                            ok += 1;
                            latencies.push(submitted.elapsed().as_secs_f64());
                        }
                        Err(_) => other += 1,
                    }
                }
                (ok, other, latencies)
            });

            let start = Instant::now();
            for i in 0..spec.wave {
                pace(start + interval * i as u32);
                if i % spec.spill_every == 0 {
                    // Rotating spill tenants keep the byte budget under
                    // fire; with room for two, every third load sweeps.
                    let name = format!("spill-{}", spill_counter % 4);
                    let _ = service.load(&name, spill(spec, spill_counter % 4));
                    spill_counter += 1;
                }
                let before = Instant::now();
                let ticket = handle.submit(&query);
                let submit_micros = before.elapsed().as_secs_f64() * 1e6;
                if ticket.shed() {
                    shed += 1;
                    shed_submit_micros.push(submit_micros);
                } else {
                    tx.send((before, ticket)).expect("collector alive");
                }
                let p = service.pressure();
                max_in_system = max_in_system.max(p.admitted);
                max_resident = max_resident.max(p.resident_bytes);
            }
            drop(tx);
            let (ok, untyped, latencies) = collector.join().expect("collector");
            admitted_ok = ok;
            other = untyped;
            admitted_s = latencies;
        });

        let after = service.pressure();
        waves.push(WaveMeasurement {
            multiplier,
            submitted: spec.wave,
            admitted_ok,
            shed,
            other,
            admitted_p50_s: quantile(&mut admitted_s, 0.50),
            admitted_p99_s: quantile(&mut admitted_s, 0.99),
            shed_submit_p99_micros: quantile(&mut shed_submit_micros, 0.99),
            max_in_system,
            max_resident_bytes: max_resident,
            quota_evictions: after.evicted_under_pressure - evictions_before,
            drained_in_system: after.admitted,
        });
    }

    // Release the sentinel: the cancel flag is polled between boost
    // repetitions, so the ticket resolves promptly.
    sentinel.cancel();
    let _ = sentinel.wait();
    service.shutdown();

    PressureReport {
        probe_mean_s,
        capacity_qps,
        waves,
        spec: spec.clone(),
    }
}

impl PressureReport {
    /// The latency bound a bounded queue implies: at most
    /// `max_queue / (executors - 1) + 2` service times end to end, with a
    /// generous 16× slack for scheduling noise. An unbounded queue at 4×
    /// arrival blows through this within one wave.
    pub fn admitted_p99_bound_s(&self) -> f64 {
        let effective = (self.spec.executors - 1).max(1) as f64;
        (self.spec.max_queue as f64 / effective + 2.0) * self.probe_mean_s * 16.0
    }

    /// Everything the acceptance bar demands, as human-readable
    /// violations; empty means the service self-regulated.
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        let p99_bound = self.admitted_p99_bound_s();
        let byte_bound = self.spec.budget() + SPILL_BYTES;
        for w in &self.waves {
            let m = w.multiplier;
            if w.other != 0 {
                v.push(format!("{m}x: {} untyped/lost outcomes", w.other));
            }
            if w.shed == 0 {
                v.push(format!("{m}x: overload never shed at saturation"));
            }
            if w.max_in_system > self.spec.max_queue {
                v.push(format!(
                    "{m}x: in-system peak {} exceeded the bound {}",
                    w.max_in_system, self.spec.max_queue
                ));
            }
            if w.max_resident_bytes > byte_bound {
                v.push(format!(
                    "{m}x: resident peak {} exceeded budget+one-spill {byte_bound}",
                    w.max_resident_bytes
                ));
            }
            if w.admitted_p99_s > p99_bound {
                v.push(format!(
                    "{m}x: admitted p99 {:.6}s exceeded the bounded-queue implication {p99_bound:.6}s",
                    w.admitted_p99_s
                ));
            }
            if w.shed_submit_p99_micros >= 1000.0 {
                v.push(format!(
                    "{m}x: shed fast-fail p99 {:.1}us is not O(us)",
                    w.shed_submit_p99_micros
                ));
            }
            if w.drained_in_system != 1 {
                v.push(format!(
                    "{m}x: {} admissions outlived the drain (sentinel aside)",
                    w.drained_in_system.saturating_sub(1)
                ));
            }
        }
        if self.waves.iter().map(|w| w.quota_evictions).sum::<u64>() == 0 {
            v.push("the spill churn never triggered a quota eviction".to_string());
        }
        v
    }

    /// Serializes the report as the `BENCH_pressure.json` document.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(
            out,
            "  \"regenerate\": \"cargo run --release -p dlra-bench --bin pressure -- --quick --out BENCH_pressure.json\","
        );
        let _ = writeln!(
            out,
            "  \"config\": {{\"executors\": {}, \"servers\": {}, \"n\": {}, \"d\": {}, \"probe\": {}, \"wave\": {}, \"max_queue\": {}, \"memory_budget\": {}, \"spill_every\": {}}},",
            self.spec.executors,
            self.spec.servers,
            self.spec.n,
            self.spec.d,
            self.spec.probe,
            self.spec.wave,
            self.spec.max_queue,
            self.spec.budget(),
            self.spec.spill_every
        );
        let _ = writeln!(
            out,
            "  \"capacity\": {{\"probe_mean_micros\": {:.1}, \"capacity_qps\": {:.1}, \"effective_executors\": {}}},",
            self.probe_mean_s * 1e6,
            self.capacity_qps,
            self.spec.executors - 1
        );
        out.push_str("  \"waves\": [\n");
        for (i, w) in self.waves.iter().enumerate() {
            let comma = if i + 1 == self.waves.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"multiplier\": {}, \"submitted\": {}, \"admitted_ok\": {}, \"shed\": {}, \"other\": {}, \"admitted_p50_micros\": {:.1}, \"admitted_p99_micros\": {:.1}, \"shed_submit_p99_micros\": {:.1}, \"max_in_system\": {}, \"max_resident_bytes\": {}, \"quota_evictions\": {}}}{comma}",
                w.multiplier,
                w.submitted,
                w.admitted_ok,
                w.shed,
                w.other,
                w.admitted_p50_s * 1e6,
                w.admitted_p99_s * 1e6,
                w.shed_submit_p99_micros,
                w.max_in_system,
                w.max_resident_bytes,
                w.quota_evictions
            );
        }
        out.push_str("  ],\n");
        let _ = writeln!(
            out,
            "  \"summary\": {{\n    \"admitted_p99_bound_micros\": {:.1},\n    \"violations\": {}\n  }}\n}}",
            self.admitted_p99_bound_s() * 1e6,
            self.violations().len()
        );
        out
    }
}
