//! The `topology` bench: star vs combining-tree collective routing at
//! growing cluster sizes, measuring what actually lands in the
//! coordinator's inbox (words and messages), the total words moved, and
//! wall clock. Emits the machine-readable `BENCH_topology.json`.
//!
//! Every cell runs the full Algorithm 1 protocol (Z-sampler) on the
//! sequential simulator — the substrate whose ledger is the contract both
//! substrates are proven against in the equivalence suite — with the
//! cluster built under the cell's topology. Outputs are bit-identical
//! across topologies by construction (asserted into the report per cell),
//! so the comparison isolates pure routing cost: the tree moves exactly
//! the star's words but fans them in over `⌈log₂ s⌉` levels, shrinking
//! the root's inbox from `Θ(s)` to `Θ(log s)` messages per collective.

use dlra_comm::{Cluster, Topology};
use dlra_core::prelude::*;
use dlra_data::{noisy_low_rank, split_with_noise_shares};
use dlra_linalg::Matrix;
use dlra_sampler::ZSamplerParams;
use std::time::Instant;

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct TopologyBenchSpec {
    /// Cluster sizes `s` to measure.
    pub servers: Vec<usize>,
    /// Fanout of the tree cells (the star is always measured too).
    pub fanout: usize,
    /// Rows of the resident dataset.
    pub n: usize,
    /// Columns of the resident dataset.
    pub d: usize,
    /// Sample count per query.
    pub r: usize,
    /// Timed repetitions per cell (the minimum is reported).
    pub reps: usize,
    /// Seed for the dataset and the query.
    pub seed: u64,
}

impl Default for TopologyBenchSpec {
    fn default() -> Self {
        TopologyBenchSpec {
            servers: vec![8, 64, 256],
            fanout: 2,
            n: 512,
            d: 16,
            r: 40,
            reps: 3,
            seed: 0x70_00_10,
        }
    }
}

impl TopologyBenchSpec {
    /// Reduced sweep for CI smoke runs — same cluster sizes (the point of
    /// the bench is the `s` axis), smaller data and a single repetition.
    pub fn quick() -> Self {
        TopologyBenchSpec {
            n: 128,
            d: 8,
            r: 16,
            reps: 1,
            ..TopologyBenchSpec::default()
        }
    }

    fn servers_max(&self) -> usize {
        self.servers.iter().copied().max().unwrap_or(1)
    }
}

/// One measured cell: one (s, topology) pair.
#[derive(Debug, Clone)]
pub struct TopologyMeasurement {
    /// Cluster size `s`.
    pub servers: usize,
    /// `star` or `tree`.
    pub topology: &'static str,
    /// Best wall time over the repetitions, seconds.
    pub wall_s: f64,
    /// Words that landed in the coordinator's inbox over the whole run.
    pub root_inbox_words: u64,
    /// Messages that landed in the coordinator's inbox.
    pub root_inbox_messages: u64,
    /// Total words moved (identical across topologies by construction).
    pub total_words: u64,
    /// Whether this cell's output was bit-identical to the star reference
    /// at the same `s` (trivially true for the star cell itself).
    pub outputs_identical: bool,
}

/// A completed sweep.
#[derive(Debug, Clone)]
pub struct TopologyBenchReport {
    /// All measured cells, star and tree per cluster size.
    pub results: Vec<TopologyMeasurement>,
    /// Whether every cell matched its star reference bit for bit.
    pub outputs_identical: bool,
    /// The spec the sweep ran with.
    pub spec: TopologyBenchSpec,
}

fn shares(spec: &TopologyBenchSpec, s: usize) -> Vec<Matrix> {
    let mut rng = dlra_util::Rng::new(spec.seed);
    let a = noisy_low_rank(spec.n, spec.d, 5, 0.1, &mut rng);
    split_with_noise_shares(&a, s, 0.3, &mut rng)
}

fn cfg(spec: &TopologyBenchSpec) -> Algorithm1Config {
    Algorithm1Config {
        k: 3,
        r: spec.r,
        sampler: SamplerKind::Z(ZSamplerParams::default()),
        seed: spec.seed ^ 0x51,
        ..Default::default()
    }
}

/// Runs one cell: a fresh model per repetition so the run's ledger delta
/// is the whole ledger; returns the best wall time and the rep-0 output.
fn run_cell(
    parts: &[Matrix],
    cfg: &Algorithm1Config,
    topology: Topology,
    reps: usize,
) -> (f64, Algorithm1Output) {
    let mut best = f64::INFINITY;
    let mut kept: Option<Algorithm1Output> = None;
    for _ in 0..reps.max(1) {
        let mut model =
            PartitionModel::with_substrate(parts.to_vec(), EntryFunction::Identity, |locals| {
                Cluster::with_topology(locals, topology)
            })
            .expect("bench model");
        let t0 = Instant::now();
        let out = run_algorithm1(&mut model, cfg).expect("bench query failed");
        best = best.min(t0.elapsed().as_secs_f64());
        kept.get_or_insert(out);
    }
    (best, kept.expect("reps >= 1"))
}

/// Runs the sweep.
pub fn run(spec: &TopologyBenchSpec) -> TopologyBenchReport {
    let cfg = cfg(spec);
    let tree = Topology::Tree {
        fanout: spec.fanout,
    };
    let mut results = Vec::new();
    let mut outputs_identical = true;
    for &s in &spec.servers {
        let parts = shares(spec, s);
        let (star_wall, star_out) = run_cell(&parts, &cfg, Topology::Star, spec.reps);
        let (tree_wall, tree_out) = run_cell(&parts, &cfg, tree, spec.reps);
        let identical = star_out.projection.basis().as_slice()
            == tree_out.projection.basis().as_slice()
            && star_out.rows == tree_out.rows
            && star_out.captured.to_bits() == tree_out.captured.to_bits();
        outputs_identical &= identical;
        results.push(TopologyMeasurement {
            servers: s,
            topology: "star",
            wall_s: star_wall,
            root_inbox_words: star_out.comm.root_inbox_words,
            root_inbox_messages: star_out.comm.root_inbox_messages,
            total_words: star_out.comm.total_words(),
            outputs_identical: true,
        });
        results.push(TopologyMeasurement {
            servers: s,
            topology: "tree",
            wall_s: tree_wall,
            root_inbox_words: tree_out.comm.root_inbox_words,
            root_inbox_messages: tree_out.comm.root_inbox_messages,
            total_words: tree_out.comm.total_words(),
            outputs_identical: identical,
        });
    }
    TopologyBenchReport {
        results,
        outputs_identical,
        spec: spec.clone(),
    }
}

impl TopologyBenchReport {
    fn find(&self, topology: &str, servers: usize) -> Option<&TopologyMeasurement> {
        self.results
            .iter()
            .find(|m| m.topology == topology && m.servers == servers)
    }

    /// Factor by which the tree shrank the coordinator-inbox message
    /// count at cluster size `s`.
    pub fn inbox_message_reduction(&self, s: usize) -> Option<f64> {
        let star = self.find("star", s)?;
        let tree = self.find("tree", s)?;
        (tree.root_inbox_messages > 0)
            .then(|| star.root_inbox_messages as f64 / tree.root_inbox_messages as f64)
    }

    /// Factor by which the tree shrank the coordinator-inbox word count
    /// at cluster size `s`.
    pub fn inbox_word_reduction(&self, s: usize) -> Option<f64> {
        let star = self.find("star", s)?;
        let tree = self.find("tree", s)?;
        (tree.root_inbox_words > 0)
            .then(|| star.root_inbox_words as f64 / tree.root_inbox_words as f64)
    }

    /// Serializes the report as the `BENCH_topology.json` document.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(
            out,
            "  \"regenerate\": \"cargo run --release -p dlra-bench --bin topology -- --out BENCH_topology.json\","
        );
        let _ = writeln!(
            out,
            "  \"config\": {{\"fanout\": {}, \"n\": {}, \"d\": {}, \"r\": {}, \"reps\": {}}},",
            self.spec.fanout, self.spec.n, self.spec.d, self.spec.r, self.spec.reps
        );
        let _ = writeln!(out, "  \"outputs_identical\": {},", self.outputs_identical);
        out.push_str("  \"results\": [\n");
        for (i, m) in self.results.iter().enumerate() {
            let comma = if i + 1 == self.results.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"servers\": {}, \"topology\": \"{}\", \"wall_s\": {:.6}, \"root_inbox_words\": {}, \"root_inbox_messages\": {}, \"total_words\": {}, \"outputs_identical\": {}}}{comma}",
                m.servers,
                m.topology,
                m.wall_s,
                m.root_inbox_words,
                m.root_inbox_messages,
                m.total_words,
                m.outputs_identical
            );
        }
        out.push_str("  ],\n");
        out.push_str("  \"summary\": {\n");
        let smax = self.spec.servers_max();
        let _ = writeln!(
            out,
            "    \"servers_max\": {smax},\n    \"root_inbox_message_reduction\": {:.3},\n    \"root_inbox_word_reduction\": {:.3}",
            self.inbox_message_reduction(smax).unwrap_or(0.0),
            self.inbox_word_reduction(smax).unwrap_or(0.0)
        );
        out.push_str("  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_keeps_bits_and_shrinks_the_root_inbox() {
        let spec = TopologyBenchSpec {
            servers: vec![2, 4, 9],
            fanout: 2,
            n: 96,
            d: 8,
            r: 20,
            reps: 1,
            seed: 5,
        };
        let report = run(&spec);
        assert_eq!(report.results.len(), 6);
        assert!(report.outputs_identical, "topology changed output bits");
        for &s in &spec.servers {
            let star = report.find("star", s).unwrap();
            let tree = report.find("tree", s).unwrap();
            assert_eq!(
                star.total_words, tree.total_words,
                "tree must move exactly the star's words at s = {s}"
            );
            if s > 2 {
                assert!(
                    tree.root_inbox_messages < star.root_inbox_messages,
                    "tree root inbox must shrink at s = {s}"
                );
            }
        }
        assert!(report.inbox_message_reduction(9).unwrap() > 1.0);

        let json = report.to_json();
        assert!(json.contains("\"outputs_identical\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
