//! Shared figure-reproduction machinery for the `fig1` / `fig2` binaries
//! and the Criterion benches.

#![forbid(unsafe_code)]
pub mod cli;
pub mod kernels;
pub mod net;
pub mod obs;
pub mod planner;
pub mod pressure;
pub mod repro;
pub mod topology;

pub use repro::{
    isolet_panel, pooling_panel, rff_panel, PanelResult, PanelRow, PanelSpec, PoolingSource,
    RffSource,
};
