//! Synthetic dataset generators standing in for the paper's evaluation
//! datasets (§VIII), plus partitioning utilities for the generalized
//! partition model.
//!
//! We do not ship the UCI datasets (Forest Cover, KDDCUP99, Caltech-101,
//! Scenes, isolet); instead each generator synthesizes data with the
//! statistical properties the corresponding experiment actually exercises —
//! see `DESIGN.md` §4 for the substitution argument per dataset. All
//! generators are deterministic in their seed and expose a `scale` knob so
//! tests run small while the figure harnesses run at (scaled-down)
//! paper-like shapes.

#![forbid(unsafe_code)]
pub mod datasets;
pub mod io;
pub mod partition;
pub mod synth;

pub use datasets::{
    caltech101_like, forest_cover_like, isolet_like, kddcup_like, scenes_like, PooledDataset,
    RawDataset,
};
pub use io::{load_matrix, read_matrix, save_matrix, IoError};
pub use partition::{split_additively, split_entrywise, split_with_noise_shares};
pub use synth::{clustered_points, noisy_low_rank, zipf_weights};
