//! Partitioning a global matrix into per-server local matrices.
//!
//! The generalized partition model aggregates by entrywise *sum*, so any
//! set of matrices summing to the target is a valid partition. The paper's
//! experiments "randomly distributed the original data to different
//! servers" and, for isolet, "arbitrarily partitioned the matrix" — both
//! represented here.

use dlra_linalg::Matrix;
use dlra_util::Rng;

/// Entrywise partition: every entry is assigned in full to one uniformly
/// random server (the others hold zero there). The paper's "arbitrary
/// partition" for the robust-PCA experiment — no server can recognize an
/// outlier locally because it might legitimately belong to another server's
/// share elsewhere.
pub fn split_entrywise(a: &Matrix, s: usize, rng: &mut Rng) -> Vec<Matrix> {
    assert!(s >= 1);
    let (n, d) = a.shape();
    let mut parts = vec![Matrix::zeros(n, d); s];
    for i in 0..n {
        for j in 0..d {
            let t = rng.index(s);
            parts[t][(i, j)] = a[(i, j)];
        }
    }
    parts
}

/// Additive shares: servers `1..s` hold i.i.d. Gaussian matrices of scale
/// `share_scale` and server `0`'s share is chosen so the sum equals `a`.
/// Every server's local matrix looks like pure noise; only the aggregate is
/// meaningful — the hardest case for local heuristics.
pub fn split_with_noise_shares(
    a: &Matrix,
    s: usize,
    share_scale: f64,
    rng: &mut Rng,
) -> Vec<Matrix> {
    assert!(s >= 1);
    let (n, d) = a.shape();
    let mut parts: Vec<Matrix> = (0..s - 1)
        .map(|_| Matrix::gaussian(n, d, rng).scaled(share_scale))
        .collect();
    let mut first = a.clone();
    for p in &parts {
        first = first.sub(p).expect("same shape");
    }
    let mut out = vec![first];
    out.append(&mut parts);
    out
}

/// Uniform additive split: every server holds `a / s` plus a random
/// zero-sum perturbation, keeping local magnitudes comparable to `a/s`.
pub fn split_additively(a: &Matrix, s: usize, rng: &mut Rng) -> Vec<Matrix> {
    assert!(s >= 1);
    let (n, d) = a.shape();
    let base = a.scaled(1.0 / s as f64);
    if s == 1 {
        return vec![base];
    }
    // Zero-sum perturbations at the scale of the shared base.
    let scale = (a.frobenius_norm_sq() / (n * d) as f64).sqrt() / s as f64;
    let mut perturbs: Vec<Matrix> = (0..s - 1)
        .map(|_| Matrix::gaussian(n, d, rng).scaled(scale))
        .collect();
    let mut last = Matrix::zeros(n, d);
    for p in &perturbs {
        last = last.sub(p).expect("same shape");
    }
    perturbs.push(last);
    perturbs
        .into_iter()
        .map(|p| base.add(&p).expect("same shape"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sums_to(parts: &[Matrix], a: &Matrix) -> bool {
        let mut sum = Matrix::zeros(a.rows(), a.cols());
        for p in parts {
            sum.add_assign(p).unwrap();
        }
        sum.sub(a).unwrap().frobenius_norm() < 1e-9 * a.frobenius_norm().max(1.0)
    }

    #[test]
    fn entrywise_partition_sums_and_is_disjoint() {
        let mut rng = Rng::new(1);
        let a = Matrix::gaussian(10, 6, &mut rng);
        let parts = split_entrywise(&a, 4, &mut rng);
        assert_eq!(parts.len(), 4);
        assert!(sums_to(&parts, &a));
        // Each entry lives on exactly one server.
        for i in 0..10 {
            for j in 0..6 {
                let nonzero = parts.iter().filter(|p| p[(i, j)] != 0.0).count();
                assert!(nonzero <= 1, "entry ({i},{j}) on {nonzero} servers");
            }
        }
    }

    #[test]
    fn noise_shares_sum() {
        let mut rng = Rng::new(2);
        let a = Matrix::gaussian(8, 5, &mut rng);
        let parts = split_with_noise_shares(&a, 5, 1.0, &mut rng);
        assert_eq!(parts.len(), 5);
        assert!(sums_to(&parts, &a));
    }

    #[test]
    fn additive_split_sums_and_balances() {
        let mut rng = Rng::new(3);
        let a = Matrix::gaussian(12, 7, &mut rng).scaled(4.0);
        let parts = split_additively(&a, 3, &mut rng);
        assert!(sums_to(&parts, &a));
        // Local norms comparable (within 3x of each other).
        let norms: Vec<f64> = parts.iter().map(|p| p.frobenius_norm()).collect();
        let max = norms.iter().cloned().fold(0.0, f64::max);
        let min = norms.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min < 3.0, "imbalanced shares: {norms:?}");
    }

    #[test]
    fn single_server_split_is_identity() {
        let mut rng = Rng::new(4);
        let a = Matrix::gaussian(5, 5, &mut rng);
        for parts in [
            split_entrywise(&a, 1, &mut rng),
            split_additively(&a, 1, &mut rng),
            split_with_noise_shares(&a, 1, 1.0, &mut rng),
        ] {
            assert_eq!(parts.len(), 1);
            assert!(sums_to(&parts, &a));
        }
    }
}
