//! Low-level synthetic matrix generators.

use dlra_linalg::Matrix;
use dlra_util::Rng;

/// A rank-`k` signal `U·V` plus i.i.d. Gaussian noise of scale `noise`.
pub fn noisy_low_rank(n: usize, d: usize, k: usize, noise: f64, rng: &mut Rng) -> Matrix {
    let u = Matrix::gaussian(n, k, rng);
    let v = Matrix::gaussian(k, d, rng);
    let mut a = u.matmul(&v).expect("shapes by construction");
    if noise > 0.0 {
        a.add_assign(&Matrix::gaussian(n, d, rng).scaled(noise))
            .expect("same shape");
    }
    a
}

/// `n` points in `ℝᵐ` drawn from a mixture of `centers` Gaussian clusters
/// with the given mixture weights (unnormalized) and within-cluster spread.
pub fn clustered_points(
    n: usize,
    m: usize,
    centers: usize,
    weights: &[f64],
    spread: f64,
    rng: &mut Rng,
) -> Matrix {
    assert_eq!(weights.len(), centers, "one weight per center");
    let mus: Vec<Vec<f64>> = (0..centers)
        .map(|_| (0..m).map(|_| rng.gaussian() * 2.0).collect())
        .collect();
    let mut a = Matrix::zeros(n, m);
    for i in 0..n {
        let c = rng.weighted_index(weights);
        for j in 0..m {
            a[(i, j)] = mus[c][j] + spread * rng.gaussian();
        }
    }
    a
}

/// Zipfian popularity weights `w_j ∝ 1/(j+1)^exponent` for a codebook of
/// size `d`.
pub fn zipf_weights(d: usize, exponent: f64) -> Vec<f64> {
    (0..d)
        .map(|j| 1.0 / (1.0 + j as f64).powf(exponent))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlra_linalg::svd;

    #[test]
    fn noisy_low_rank_spectrum() {
        let mut rng = Rng::new(1);
        let a = noisy_low_rank(60, 20, 3, 0.01, &mut rng);
        let d = svd(&a).unwrap();
        // First 3 singular values dominate the rest.
        assert!(d.s[2] > 20.0 * d.s[3], "σ₃={} σ₄={}", d.s[2], d.s[3]);
    }

    #[test]
    fn noise_zero_gives_exact_rank() {
        let mut rng = Rng::new(2);
        let a = noisy_low_rank(30, 10, 2, 0.0, &mut rng);
        let d = svd(&a).unwrap();
        assert_eq!(d.rank(1e-9), 2);
    }

    #[test]
    fn clusters_have_centers() {
        let mut rng = Rng::new(3);
        let a = clustered_points(400, 8, 3, &[1.0, 1.0, 1.0], 0.1, &mut rng);
        assert_eq!(a.shape(), (400, 8));
        // Tight clusters ⇒ the 400 points take ~3 distinct locations ⇒
        // effective rank ≤ 3 after centering is not guaranteed, but the
        // top-3 subspace captures almost all energy.
        let d = svd(&a).unwrap();
        let top3: f64 = d.s.iter().take(3).map(|x| x * x).sum();
        assert!(top3 > 0.95 * a.frobenius_norm_sq());
    }

    #[test]
    fn imbalanced_weights_respected() {
        let mut rng = Rng::new(4);
        // Center 0 has 99% of the mass: points should hug one location.
        let a = clustered_points(300, 4, 2, &[99.0, 1.0], 0.01, &mut rng);
        let d = svd(&a).unwrap();
        let top1 = d.s[0] * d.s[0];
        assert!(top1 > 0.8 * a.frobenius_norm_sq());
    }

    #[test]
    fn zipf_is_decreasing_normalizable() {
        let w = zipf_weights(100, 1.0);
        assert_eq!(w.len(), 100);
        assert!(w.windows(2).all(|p| p[0] >= p[1]));
        assert!(w[0] == 1.0);
    }
}
