//! Plain-text matrix I/O, so the harnesses can run on *real* datasets
//! (e.g. the actual UCI files the paper used) when available.
//!
//! Format: one row per line; fields separated by commas and/or whitespace;
//! `#`-prefixed lines are comments; blank lines ignored. All rows must have
//! equal field counts.

use dlra_linalg::Matrix;
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Errors from matrix file I/O.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// A field failed to parse as `f64`.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending field.
        field: String,
    },
    /// Ragged rows.
    Ragged {
        /// 1-based line number.
        line: usize,
        /// Fields found on this line.
        got: usize,
        /// Fields expected (from the first data line).
        expected: usize,
    },
    /// No data lines at all.
    Empty,
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io: {e}"),
            IoError::Parse { line, field } => {
                write!(f, "line {line}: cannot parse {field:?} as a number")
            }
            IoError::Ragged {
                line,
                got,
                expected,
            } => write!(f, "line {line}: {got} fields, expected {expected}"),
            IoError::Empty => write!(f, "no data rows"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Parses a matrix from anything readable (file contents, in-memory text).
pub fn read_matrix(reader: impl BufRead) -> Result<Matrix, IoError> {
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut expected = 0usize;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed
            .split(|c: char| c == ',' || c.is_whitespace())
            .filter(|s| !s.is_empty())
            .collect();
        let mut row = Vec::with_capacity(fields.len());
        for f in fields {
            row.push(f.parse::<f64>().map_err(|_| IoError::Parse {
                line: idx + 1,
                field: f.to_string(),
            })?);
        }
        if rows.is_empty() {
            expected = row.len();
        } else if row.len() != expected {
            return Err(IoError::Ragged {
                line: idx + 1,
                got: row.len(),
                expected,
            });
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err(IoError::Empty);
    }
    Matrix::from_rows(&rows).map_err(|_| IoError::Empty)
}

/// Loads a matrix from a file path.
pub fn load_matrix(path: impl AsRef<Path>) -> Result<Matrix, IoError> {
    let file = std::fs::File::open(path)?;
    read_matrix(std::io::BufReader::new(file))
}

/// Writes a matrix as comma-separated text (full `f64` round-trip
/// precision).
pub fn save_matrix(path: impl AsRef<Path>, m: &Matrix) -> Result<(), IoError> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    for i in 0..m.rows() {
        let row = m.row(i);
        for (j, v) in row.iter().enumerate() {
            if j > 0 {
                write!(w, ",")?;
            }
            // `{:?}` prints the shortest representation that round-trips.
            write!(w, "{v:?}")?;
        }
        writeln!(w)?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlra_util::Rng;
    use std::io::Cursor;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("dlra_io_test_{}_{name}", std::process::id()))
    }

    #[test]
    fn parses_commas_whitespace_comments() {
        let text = "# header\n1, 2.5, -3\n\n4 5 6\n7,\t8 ,9\n";
        let m = read_matrix(Cursor::new(text)).unwrap();
        assert_eq!(m.shape(), (3, 3));
        assert_eq!(m.row(0), &[1.0, 2.5, -3.0]);
        assert_eq!(m.row(2), &[7.0, 8.0, 9.0]);
    }

    #[test]
    fn rejects_ragged_and_garbage() {
        assert!(matches!(
            read_matrix(Cursor::new("1 2\n3\n")),
            Err(IoError::Ragged { line: 2, .. })
        ));
        assert!(matches!(
            read_matrix(Cursor::new("1 x\n")),
            Err(IoError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            read_matrix(Cursor::new("# only comments\n")),
            Err(IoError::Empty)
        ));
    }

    #[test]
    fn round_trips_exactly() {
        let mut rng = Rng::new(1);
        let m = Matrix::gaussian(7, 5, &mut rng);
        let path = tmp("roundtrip.csv");
        save_matrix(&path, &m).unwrap();
        let back = load_matrix(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(m, back);
    }

    #[test]
    fn scientific_notation_and_specials() {
        let m = read_matrix(Cursor::new("1e-3 2.5E2\n-0.0 1e10\n")).unwrap();
        assert_eq!(m[(0, 0)], 1e-3);
        assert_eq!(m[(0, 1)], 250.0);
        assert_eq!(m[(1, 1)], 1e10);
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            load_matrix("/nonexistent/definitely/not/here.csv"),
            Err(IoError::Io(_))
        ));
    }
}
