//! Named dataset stand-ins matching the paper's evaluation workloads
//! (§VIII). Shapes are scaled down (see `DESIGN.md` §4) so that the *exact*
//! `‖A − [A]ₖ‖²_F` needed to measure errors is computable in seconds; a
//! `scale` multiplier lets benches grow them.

use crate::partition::{split_entrywise, split_with_noise_shares};
use crate::synth::{clustered_points, noisy_low_rank, zipf_weights};
use dlra_linalg::Matrix;
use dlra_util::Rng;

/// A dataset whose raw matrix is partitioned additively across servers
/// (the RFF and robust-PCA workloads).
#[derive(Debug, Clone)]
pub struct RawDataset {
    /// Dataset label (used in reports).
    pub name: &'static str,
    /// Per-server local matrices (summing to the raw global matrix).
    pub parts: Vec<Matrix>,
    /// Number of servers (`parts.len()`).
    pub servers: usize,
}

impl RawDataset {
    /// The aggregated raw matrix (evaluation only).
    pub fn global(&self) -> Matrix {
        let (n, d) = self.parts[0].shape();
        let mut sum = Matrix::zeros(n, d);
        for p in &self.parts {
            sum.add_assign(p).expect("uniform shapes");
        }
        sum
    }
}

/// A dataset already expressed as per-server *pooled counts* (the P-norm
/// pooling workloads, where the partition is part of the data's semantics:
/// each server pooled the patches it hosts).
#[derive(Debug, Clone)]
pub struct PooledDataset {
    /// Dataset label.
    pub name: &'static str,
    /// Per-server pooled count matrices `Mᵗ` (n images × d codewords).
    pub parts: Vec<Matrix>,
}

/// Forest-Cover-like: clustered base points whose Gaussian RFF expansion is
/// the matrix to approximate. Paper shape 522000×54 raw → 5000 Fourier
/// features on 10 servers; ours: `3000·scale` points, 54 raw dims, 10
/// servers (feature dimension chosen by the caller's `RffMap`).
pub fn forest_cover_like(scale: usize, seed: u64) -> RawDataset {
    let mut rng = Rng::new(seed);
    let n = 3000 * scale.max(1);
    let m = 54;
    let base = clustered_points(
        n,
        m,
        7,
        &[3.0, 2.5, 2.0, 1.0, 0.6, 0.4, 0.2],
        0.35,
        &mut rng,
    );
    let parts = split_with_noise_shares(&base, 10, 0.2, &mut rng);
    RawDataset {
        name: "forest_cover_like",
        parts,
        servers: 10,
    }
}

/// KDDCUP99-like: heavily imbalanced traffic classes (a few dominant attack
/// types), 50 servers. Paper shape 4898431×41 raw → 50 Fourier features;
/// ours: `5000·scale` points, 40 raw dims.
pub fn kddcup_like(scale: usize, seed: u64) -> RawDataset {
    let mut rng = Rng::new(seed);
    let n = 5000 * scale.max(1);
    let m = 40;
    // Two giant classes (normal + smurf-like) and a long tail.
    let base = clustered_points(n, m, 6, &[55.0, 35.0, 5.0, 3.0, 1.5, 0.5], 0.25, &mut rng);
    let parts = split_with_noise_shares(&base, 50, 0.15, &mut rng);
    RawDataset {
        name: "kddcup_like",
        parts,
        servers: 50,
    }
}

/// Caltech-101-like pooled SIFT codes: `1500·scale` images, 256-codeword
/// 1-of-K patch codes pooled per server, 50 servers, Zipfian codeword
/// popularity with per-image topic tilt (so the pooled matrix has
/// meaningful principal components).
pub fn caltech101_like(scale: usize, seed: u64) -> PooledDataset {
    pooled_codes_dataset("caltech101_like", 1500 * scale.max(1), 256, 60, 50, seed)
}

/// Scenes-like pooled codes: smaller corpus (`1000·scale` images), fewer
/// patches per image, 10 servers.
pub fn scenes_like(scale: usize, seed: u64) -> PooledDataset {
    pooled_codes_dataset("scenes_like", 1000 * scale.max(1), 256, 30, 10, seed)
}

fn pooled_codes_dataset(
    name: &'static str,
    n: usize,
    d: usize,
    patches_per_image: usize,
    s: usize,
    seed: u64,
) -> PooledDataset {
    let mut rng = Rng::new(seed);
    let base = zipf_weights(d, 0.9);
    let topics = 8usize;
    let mut parts = vec![Matrix::zeros(n, d); s];
    for i in 0..n {
        let topic = rng.index(topics);
        let mut w = base.clone();
        for (j, wj) in w.iter_mut().enumerate() {
            if j % topics == topic {
                *wj *= 8.0;
            }
        }
        for _ in 0..patches_per_image {
            let j = rng.weighted_index(&w);
            let t = rng.index(s);
            parts[t][(i, j)] += 1.0;
        }
    }
    PooledDataset { name, parts }
}

/// isolet-like: low-rank-ish spoken-letter features with `outliers` entries
/// corrupted to extreme magnitudes, arbitrarily (entrywise) partitioned
/// across 10 servers so no server can detect the corruption locally.
/// Paper shape 1559×617 with 50 corrupted entries; ours `1200·scale`×256
/// with 50 corrupted entries.
pub fn isolet_like(scale: usize, outliers: usize, seed: u64) -> RawDataset {
    let mut rng = Rng::new(seed);
    let n = 1200 * scale.max(1);
    let d = 256;
    let mut a = noisy_low_rank(n, d, 12, 0.15, &mut rng);
    for _ in 0..outliers {
        let i = rng.index(n);
        let j = rng.index(d);
        a[(i, j)] = 5e4 * (1.0 + rng.f64()) * if rng.bernoulli(0.5) { 1.0 } else { -1.0 };
    }
    let parts = split_entrywise(&a, 10, &mut rng);
    RawDataset {
        name: "isolet_like",
        parts,
        servers: 10,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forest_cover_shape_and_servers() {
        let ds = forest_cover_like(1, 1);
        assert_eq!(ds.parts.len(), 10);
        assert_eq!(ds.parts[0].shape(), (3000, 54));
        assert_eq!(ds.global().shape(), (3000, 54));
    }

    #[test]
    fn kddcup_is_imbalanced() {
        let ds = kddcup_like(1, 2);
        assert_eq!(ds.parts.len(), 50);
        let g = ds.global();
        assert_eq!(g.shape(), (5000, 40));
        // Two dominant clusters ⇒ top-2 subspace holds most energy.
        let dec = dlra_linalg::svd(&g).unwrap();
        let top2: f64 = dec.s.iter().take(2).map(|x| x * x).sum();
        assert!(top2 > 0.5 * g.frobenius_norm_sq());
    }

    #[test]
    fn pooled_datasets_are_nonnegative_counts() {
        let ds = scenes_like(1, 3);
        assert_eq!(ds.parts.len(), 10);
        let (n, d) = ds.parts[0].shape();
        assert_eq!((n, d), (1000, 256));
        for p in &ds.parts {
            assert!(p.as_slice().iter().all(|&x| x >= 0.0 && x == x.floor()));
        }
        // Total patch count conserved: 30 per image.
        let total: f64 = ds
            .parts
            .iter()
            .map(|p| p.as_slice().iter().sum::<f64>())
            .sum();
        assert_eq!(total, (1000 * 30) as f64);
    }

    #[test]
    fn caltech_bigger_than_scenes() {
        let c = caltech101_like(1, 4);
        assert_eq!(c.parts.len(), 50);
        assert_eq!(c.parts[0].shape(), (1500, 256));
    }

    #[test]
    fn isolet_has_outliers_hidden_from_servers() {
        let ds = isolet_like(1, 50, 5);
        let g = ds.global();
        let huge = g.as_slice().iter().filter(|&&x| x.abs() > 1e4).count();
        assert!((40..=50).contains(&huge), "got {huge} outliers");
        // Benign entries are orders of magnitude smaller.
        let benign_max = g
            .as_slice()
            .iter()
            .map(|x| x.abs())
            .filter(|&x| x < 1e4)
            .fold(0.0, f64::max);
        assert!(benign_max < 100.0, "benign max {benign_max}");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = isolet_like(1, 10, 7).global();
        let b = isolet_like(1, 10, 7).global();
        assert_eq!(a, b);
    }
}
