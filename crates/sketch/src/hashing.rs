//! k-wise independent hashing by polynomial evaluation over GF(p),
//! p = 2⁶¹ − 1 (a Mersenne prime, so reduction is two adds and a shift).
//!
//! The paper's algorithms need pairwise-independent bucket hashes
//! (Algorithms 2 and 3) and an `O(C·log(ε⁻¹l))`-wise independent hash `g`
//! for the min-wise coordinate selection of Algorithm 4. A degree-(k−1)
//! polynomial with uniformly random coefficients evaluated over a prime
//! field is the textbook construction for exactly k-wise independence.

use dlra_util::Rng;

/// The Mersenne prime 2⁶¹ − 1.
pub const MERSENNE_P: u64 = (1u64 << 61) - 1;

/// Reduces a 128-bit value modulo 2⁶¹ − 1.
#[inline]
fn reduce128(x: u128) -> u64 {
    const P: u128 = MERSENNE_P as u128;
    // Fold high bits twice, then a final conditional subtract.
    let x = (x & P) + (x >> 61);
    let x = (x & P) + (x >> 61);
    let mut r = x as u64;
    if r >= MERSENNE_P {
        r -= MERSENNE_P;
    }
    r
}

/// `(a * b) mod (2⁶¹ − 1)`.
#[inline]
fn mulmod(a: u64, b: u64) -> u64 {
    reduce128(a as u128 * b as u128)
}

/// `(a + b) mod (2⁶¹ − 1)`.
#[inline]
fn addmod(a: u64, b: u64) -> u64 {
    let s = a as u128 + b as u128;
    reduce128(s)
}

/// A hash function drawn from a k-wise independent family, mapping
/// `u64 → [0, 2⁶¹ − 1)`.
///
/// Seeded construction is deterministic: two parties that construct a
/// `KWiseHash` from the same `(independence, seed)` obtain the same function,
/// which is how a broadcast seed (one word) stands in for shipping the
/// function itself.
#[derive(Debug, Clone)]
pub struct KWiseHash {
    /// Polynomial coefficients, constant term first; `coeffs.len()` = k.
    coeffs: Vec<u64>,
}

impl KWiseHash {
    /// Draws a function from the k-wise independent family using `rng`.
    pub fn new(independence: usize, rng: &mut Rng) -> Self {
        assert!(independence >= 1, "independence must be >= 1");
        let coeffs = (0..independence)
            .map(|i| {
                let mut c = rng.next_u64() % MERSENNE_P;
                // Leading coefficient nonzero keeps the polynomial degree exact;
                // not required for k-wise independence but avoids degeneracy.
                if i + 1 == independence && c == 0 {
                    c = 1;
                }
                c
            })
            .collect();
        KWiseHash { coeffs }
    }

    /// Deterministic construction from a broadcastable 64-bit seed.
    pub fn from_seed(independence: usize, seed: u64) -> Self {
        let mut rng = Rng::new(seed);
        KWiseHash::new(independence, &mut rng)
    }

    /// The independence parameter k.
    pub fn independence(&self) -> usize {
        self.coeffs.len()
    }

    /// Raw hash value in `[0, 2⁶¹ − 1)` (Horner evaluation).
    #[inline]
    pub fn hash(&self, x: u64) -> u64 {
        let x = x % MERSENNE_P;
        let mut acc = 0u64;
        for &c in self.coeffs.iter().rev() {
            acc = addmod(mulmod(acc, x), c);
        }
        acc
    }

    /// Hash mapped to a bucket in `[0, m)`.
    #[inline]
    pub fn bucket(&self, x: u64, m: usize) -> usize {
        debug_assert!(m > 0);
        (self.hash(x) % m as u64) as usize
    }

    /// Rademacher sign `±1` derived from the hash's low bit.
    #[inline]
    pub fn sign(&self, x: u64) -> f64 {
        if self.hash(x) & 1 == 0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Hash mapped to a float in `[0, 1)` (used for subsampling levels).
    #[inline]
    pub fn unit(&self, x: u64) -> f64 {
        self.hash(x) as f64 / MERSENNE_P as f64
    }
}

/// Convenience constructor for the pairwise-independent (k = 2) family used
/// by the bucket hashes of Algorithms 2–3.
#[derive(Debug, Clone)]
pub struct PairwiseHash(pub KWiseHash);

impl PairwiseHash {
    /// Draws a pairwise-independent function.
    pub fn new(rng: &mut Rng) -> Self {
        PairwiseHash(KWiseHash::new(2, rng))
    }

    /// Deterministic construction from a seed.
    pub fn from_seed(seed: u64) -> Self {
        PairwiseHash(KWiseHash::from_seed(2, seed))
    }

    /// Bucket in `[0, m)`.
    #[inline]
    pub fn bucket(&self, x: u64, m: usize) -> usize {
        self.0.bucket(x, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mersenne_arithmetic() {
        assert_eq!(reduce128(MERSENNE_P as u128), 0);
        assert_eq!(reduce128((MERSENNE_P as u128) * 2 + 5), 5);
        assert_eq!(mulmod(MERSENNE_P - 1, MERSENNE_P - 1), 1);
        assert_eq!(addmod(MERSENNE_P - 1, 1), 0);
    }

    #[test]
    fn deterministic_from_seed() {
        let h1 = KWiseHash::from_seed(4, 99);
        let h2 = KWiseHash::from_seed(4, 99);
        let h3 = KWiseHash::from_seed(4, 100);
        for x in 0..100u64 {
            assert_eq!(h1.hash(x), h2.hash(x));
        }
        assert!((0..100u64).any(|x| h1.hash(x) != h3.hash(x)));
    }

    #[test]
    fn buckets_in_range_and_spread() {
        let h = KWiseHash::from_seed(2, 7);
        let m = 16;
        let mut counts = vec![0usize; m];
        for x in 0..16_000u64 {
            let b = h.bucket(x, m);
            assert!(b < m);
            counts[b] += 1;
        }
        // Each bucket should get roughly 1000 (±25%).
        for (b, &c) in counts.iter().enumerate() {
            assert!((700..1300).contains(&c), "bucket {b} has {c} of 16000");
        }
    }

    #[test]
    fn signs_are_balanced() {
        let h = KWiseHash::from_seed(2, 8);
        let n = 10_000;
        let plus = (0..n).filter(|&x| h.sign(x) > 0.0).count();
        let frac = plus as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.05, "sign fraction {frac}");
    }

    #[test]
    fn pairwise_collision_probability() {
        // Over many independent draws, Pr[h(a) == h(b)] for fixed a != b
        // into m buckets should be ~1/m.
        let m = 8;
        let trials = 4000;
        let mut rng = Rng::new(17);
        let collisions = (0..trials)
            .filter(|_| {
                let h = PairwiseHash::new(&mut rng);
                h.bucket(3, m) == h.bucket(1234, m)
            })
            .count();
        let rate = collisions as f64 / trials as f64;
        assert!(
            (rate - 1.0 / m as f64).abs() < 0.03,
            "collision rate {rate}"
        );
    }

    #[test]
    fn unit_values_are_uniformish() {
        let h = KWiseHash::from_seed(8, 9);
        let n = 10_000;
        let mean: f64 = (0..n).map(|x| h.unit(x)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert!((0..n).all(|x| (0.0..1.0).contains(&h.unit(x))));
    }

    #[test]
    fn higher_independence_distinct_coeffs() {
        let h = KWiseHash::from_seed(20, 10);
        assert_eq!(h.independence(), 20);
    }

    #[test]
    #[should_panic(expected = "independence")]
    fn zero_independence_panics() {
        let mut rng = Rng::new(1);
        KWiseHash::new(0, &mut rng);
    }
}
