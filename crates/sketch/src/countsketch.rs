//! CountSketch (Charikar–Chen–Farach-Colton [21]) with median point queries.
//!
//! A CountSketch is a `depth × width` table; coordinate `j` of the input
//! vector is added into bucket `hᵣ(j)` of each row `r` with sign `σᵣ(j)`.
//! The sketch is linear, so summing the tables of per-server sketches built
//! from the same seed yields the sketch of the summed vector — the basis of
//! the distributed `HeavyHitters` protocol.

use crate::hashing::KWiseHash;

/// A seeded CountSketch over `u64`-indexed coordinates.
///
/// ```
/// use dlra_sketch::CountSketch;
/// // Two servers sketch local vectors with the same seed and merge.
/// let mut a = CountSketch::new(5, 64, 42);
/// let mut b = CountSketch::new(5, 64, 42);
/// a.update(7, 2.0);
/// b.update(7, 3.0);
/// a.merge(&b);
/// assert!((a.estimate(7) - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct CountSketch {
    depth: usize,
    width: usize,
    seed: u64,
    /// Row-major `depth × width` table.
    table: Vec<f64>,
    bucket_hash: Vec<KWiseHash>,
    sign_hash: Vec<KWiseHash>,
}

impl CountSketch {
    /// Creates an empty sketch. All parties constructing with the same
    /// `(depth, width, seed)` share hash functions and can merge.
    pub fn new(depth: usize, width: usize, seed: u64) -> Self {
        assert!(
            depth > 0 && width > 0,
            "CountSketch dimensions must be positive"
        );
        let bucket_hash = (0..depth)
            .map(|r| KWiseHash::from_seed(2, seed ^ (0x9E37_79B9 + r as u64)))
            .collect();
        let sign_hash = (0..depth)
            .map(|r| KWiseHash::from_seed(4, seed ^ (0xC2B2_AE35 + r as u64).rotate_left(17)))
            .collect();
        CountSketch {
            depth,
            width,
            seed,
            table: vec![0.0; depth * width],
            bucket_hash,
            sign_hash,
        }
    }

    /// Number of rows (independent repetitions).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Buckets per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The construction seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Size of the sketch in 8-byte words (what a server ships upstream).
    pub fn size_words(&self) -> u64 {
        (self.depth * self.width) as u64
    }

    /// Adds `delta` at coordinate `j`.
    #[inline]
    pub fn update(&mut self, j: u64, delta: f64) {
        if delta == 0.0 {
            return;
        }
        for r in 0..self.depth {
            let b = self.bucket_hash[r].bucket(j, self.width);
            let s = self.sign_hash[r].sign(j);
            self.table[r * self.width + b] += s * delta;
        }
    }

    /// Sketches a whole dense vector (coordinate i gets value `v[i]`).
    pub fn update_dense(&mut self, v: &[f64]) {
        for (j, &x) in v.iter().enumerate() {
            self.update(j as u64, x);
        }
    }

    /// Point query: median over rows of `σᵣ(j) · table[r][hᵣ(j)]`.
    pub fn estimate(&self, j: u64) -> f64 {
        let mut vals: Vec<f64> = (0..self.depth)
            .map(|r| {
                let b = self.bucket_hash[r].bucket(j, self.width);
                self.sign_hash[r].sign(j) * self.table[r * self.width + b]
            })
            .collect();
        median_in_place(&mut vals)
    }

    /// AMS-style second-moment estimate: median over rows of the row's
    /// squared bucket sums. Each row is an unbiased `F₂` estimator.
    pub fn f2_estimate(&self) -> f64 {
        let mut vals: Vec<f64> = (0..self.depth)
            .map(|r| {
                self.table[r * self.width..(r + 1) * self.width]
                    .iter()
                    .map(|x| x * x)
                    .sum()
            })
            .collect();
        median_in_place(&mut vals)
    }

    /// Merges another sketch built with identical parameters into this one
    /// (sketch linearity). Panics if parameters differ.
    pub fn merge(&mut self, other: &CountSketch) {
        assert_eq!(
            (self.depth, self.width, self.seed),
            (other.depth, other.width, other.seed),
            "cannot merge CountSketches with different parameters"
        );
        for (a, b) in self.table.iter_mut().zip(&other.table) {
            *a += b;
        }
    }

    /// Resets all counters to zero (hash functions retained).
    pub fn clear(&mut self) {
        self.table.iter_mut().for_each(|x| *x = 0.0);
    }

    /// The row-major `depth × width` counter table — the words a server
    /// ships when the sketch crosses a wire.
    pub fn table(&self) -> &[f64] {
        &self.table
    }

    /// Replaces the counter table from decoded wire words. Returns `false`
    /// (leaving the sketch untouched) if the length does not match.
    pub fn load_table(&mut self, table: &[f64]) -> bool {
        if table.len() != self.table.len() {
            return false;
        }
        self.table.copy_from_slice(table);
        true
    }
}

/// Median of a scratch vector (averaging the middle pair for even length).
pub(crate) fn median_in_place(vals: &mut [f64]) -> f64 {
    assert!(!vals.is_empty());
    vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = vals.len();
    if n % 2 == 1 {
        vals[n / 2]
    } else {
        0.5 * (vals[n / 2 - 1] + vals[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlra_util::Rng;

    #[test]
    fn exact_for_single_coordinate() {
        let mut cs = CountSketch::new(5, 32, 1);
        cs.update(7, 3.5);
        assert!((cs.estimate(7) - 3.5).abs() < 1e-12);
        // Other coordinates either 0 or a collision value; with one item the
        // estimate of an untouched coordinate in the same bucket is ±3.5 per
        // row, but the median over 5 rows of mostly-zero entries is 0 with
        // high probability. Just check coordinate 7 here.
    }

    #[test]
    fn linearity_updates_cancel() {
        let mut cs = CountSketch::new(5, 64, 2);
        cs.update(3, 10.0);
        cs.update(3, -10.0);
        assert_eq!(cs.estimate(3), 0.0);
        assert_eq!(cs.f2_estimate(), 0.0);
    }

    #[test]
    fn merge_equals_joint_sketch() {
        let mut rng = Rng::new(3);
        let v1: Vec<f64> = (0..200).map(|_| rng.gaussian()).collect();
        let v2: Vec<f64> = (0..200).map(|_| rng.gaussian()).collect();
        let mut s1 = CountSketch::new(5, 32, 7);
        let mut s2 = CountSketch::new(5, 32, 7);
        let mut joint = CountSketch::new(5, 32, 7);
        s1.update_dense(&v1);
        s2.update_dense(&v2);
        for j in 0..200 {
            joint.update(j as u64, v1[j] + v2[j]);
        }
        s1.merge(&s2);
        for j in 0..200u64 {
            assert!(
                (s1.estimate(j) - joint.estimate(j)).abs() < 1e-9,
                "coordinate {j}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "different parameters")]
    fn merge_rejects_mismatched_seed() {
        let mut a = CountSketch::new(3, 8, 1);
        let b = CountSketch::new(3, 8, 2);
        a.merge(&b);
    }

    #[test]
    fn heavy_coordinate_estimated_well() {
        // One big coordinate among small noise: estimate within noise bound.
        let mut rng = Rng::new(4);
        let mut cs = CountSketch::new(7, 256, 9);
        let n = 1000u64;
        let mut f2 = 0.0;
        for j in 0..n {
            let x = if j == 500 { 50.0 } else { rng.gaussian() * 0.5 };
            f2 += x * x;
            cs.update(j, x);
        }
        let est = cs.estimate(500);
        // CountSketch error ~ sqrt(F2/width) per row; median tightens it.
        let bound = 3.0 * (f2 / 256.0).sqrt();
        assert!((est - 50.0).abs() < bound, "est {est} bound {bound}");
    }

    #[test]
    fn f2_estimate_accuracy() {
        let mut rng = Rng::new(5);
        let v: Vec<f64> = (0..2000).map(|_| rng.gaussian()).collect();
        let truth: f64 = v.iter().map(|x| x * x).sum();
        let mut cs = CountSketch::new(9, 512, 11);
        cs.update_dense(&v);
        let est = cs.f2_estimate();
        assert!((est - truth).abs() < 0.3 * truth, "est {est} truth {truth}");
    }

    #[test]
    fn zero_updates_are_skipped() {
        let mut cs = CountSketch::new(3, 8, 6);
        cs.update(5, 0.0);
        assert!(cs.table.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn clear_resets() {
        let mut cs = CountSketch::new(3, 8, 6);
        cs.update(5, 2.0);
        cs.clear();
        assert_eq!(cs.estimate(5), 0.0);
    }

    #[test]
    fn size_words_counts_table() {
        let cs = CountSketch::new(4, 100, 0);
        assert_eq!(cs.size_words(), 400);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median_in_place(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median_in_place(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median_in_place(&mut [5.0]), 5.0);
    }
}
