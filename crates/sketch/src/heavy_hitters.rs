//! `HeavyHitters(v, B, δ)` — recover every coordinate with `v_j² ≥ ‖v‖²₂/B`.
//!
//! This is the protocol the paper calls `HeavyHitters` in §V-B: a CountSketch
//! of `v` (linear, hence distributable by summing per-server sketches built
//! from a broadcast seed), from which the coordinator recovers all
//! sufficiently heavy coordinates by point-querying candidates and comparing
//! against the sketch's own `F₂` estimate. Setting the width to `Θ(B)` and
//! depth to `Θ(log(1/δ))` yields the guarantee of [21]: with probability
//! `1 − δ` every `1/B`-heavy coordinate is reported.

use crate::countsketch::CountSketch;

/// A recovered heavy coordinate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeavyHitter {
    /// Coordinate index.
    pub index: u64,
    /// CountSketch point estimate of its value.
    pub estimate: f64,
}

/// A seeded heavy-hitters sketch with recovery threshold `B`.
#[derive(Debug, Clone)]
pub struct HeavyHittersSketch {
    cs: CountSketch,
    /// Heaviness threshold: report j when `v̂_j² ≥ F̂₂ / B`.
    b: f64,
}

impl HeavyHittersSketch {
    /// Creates a sketch for threshold `B` and failure probability `δ`.
    ///
    /// Width is `8·⌈B⌉` buckets (so a heavy coordinate's bucket noise is at
    /// most a small fraction of its value in expectation) and depth
    /// `O(log(1/δ))` rows for the median.
    pub fn new(b: f64, delta: f64, seed: u64) -> Self {
        assert!(b >= 1.0, "threshold B must be >= 1");
        assert!((0.0..1.0).contains(&delta) && delta > 0.0, "delta in (0,1)");
        let width = (8.0 * b).ceil() as usize;
        let depth = (4.0 * (1.0 / delta).ln()).ceil().max(3.0) as usize;
        HeavyHittersSketch {
            cs: CountSketch::new(depth, width.max(8), seed),
            b,
        }
    }

    /// Creates a sketch with explicit CountSketch dimensions (used when the
    /// caller manages its own communication budget).
    pub fn with_dims(b: f64, depth: usize, width: usize, seed: u64) -> Self {
        HeavyHittersSketch {
            cs: CountSketch::new(depth, width, seed),
            b,
        }
    }

    /// The threshold `B`.
    pub fn b(&self) -> f64 {
        self.b
    }

    /// The underlying CountSketch (read access for wire encoding).
    pub fn countsketch(&self) -> &CountSketch {
        &self.cs
    }

    /// Reassembles a sketch from its threshold and decoded CountSketch
    /// (the wire-decode path; `b` must already be validated `>= 1`).
    pub fn from_parts(b: f64, cs: CountSketch) -> Self {
        HeavyHittersSketch { cs, b }
    }

    /// Replaces the underlying counter table from decoded wire words.
    /// Returns `false` (leaving the sketch untouched) on length mismatch.
    pub fn load_countsketch_table(&mut self, table: &[f64]) -> bool {
        self.cs.load_table(table)
    }

    /// Sketch size in words (the per-server upstream cost).
    pub fn size_words(&self) -> u64 {
        self.cs.size_words()
    }

    /// Adds `delta` at coordinate `j`.
    pub fn update(&mut self, j: u64, delta: f64) {
        self.cs.update(j, delta);
    }

    /// Sketches a dense vector.
    pub fn update_dense(&mut self, v: &[f64]) {
        self.cs.update_dense(v);
    }

    /// Merges a compatible sketch (per-server aggregation).
    pub fn merge(&mut self, other: &HeavyHittersSketch) {
        assert!(
            (self.b - other.b).abs() < 1e-12,
            "cannot merge heavy-hitter sketches with different thresholds"
        );
        self.cs.merge(&other.cs);
    }

    /// Point estimate of coordinate `j`.
    pub fn estimate(&self, j: u64) -> f64 {
        self.cs.estimate(j)
    }

    /// The sketch's own `F₂` estimate.
    pub fn f2_estimate(&self) -> f64 {
        self.cs.f2_estimate()
    }

    /// Recovers all candidates whose estimated squared value clears the
    /// `F̂₂/B` threshold (with a 1/2 slack factor so borderline-heavy
    /// coordinates whose estimate is slightly deflated still report —
    /// false positives are filtered later by exact lookups in Algorithm 3
    /// line 6/11, so slack only costs a little communication).
    pub fn recover(&self, candidates: impl IntoIterator<Item = u64>) -> Vec<HeavyHitter> {
        let f2 = self.f2_estimate();
        if f2 <= 0.0 {
            return Vec::new();
        }
        let threshold = 0.5 * f2 / self.b;
        let mut out = Vec::new();
        for j in candidates {
            let est = self.cs.estimate(j);
            if est * est >= threshold {
                out.push(HeavyHitter {
                    index: j,
                    estimate: est,
                });
            }
        }
        out
    }

    /// Recovers over the dense candidate range `[0, l)`.
    pub fn recover_range(&self, l: u64) -> Vec<HeavyHitter> {
        self.recover(0..l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlra_util::Rng;

    #[test]
    fn recovers_planted_heavy_coordinates() {
        let mut rng = Rng::new(1);
        let l = 2000u64;
        let b = 20.0;
        let mut sk = HeavyHittersSketch::new(b, 0.01, 77);
        let mut v = vec![0.0f64; l as usize];
        for x in v.iter_mut() {
            *x = rng.gaussian() * 0.1;
        }
        // Plant three heavy coordinates.
        v[100] = 10.0;
        v[700] = -12.0;
        v[1500] = 9.0;
        sk.update_dense(&v);
        let hh = sk.recover_range(l);
        let idx: Vec<u64> = hh.iter().map(|h| h.index).collect();
        for want in [100u64, 700, 1500] {
            assert!(idx.contains(&want), "missing heavy coordinate {want}");
        }
        // Estimates close to the planted values.
        for h in &hh {
            if h.index == 700 {
                assert!((h.estimate + 12.0).abs() < 1.0);
            }
        }
    }

    #[test]
    fn no_false_floods_on_uniform_vector() {
        // Uniform small values: nothing is 1/B-heavy for small B, so the
        // report should be (nearly) empty.
        let l = 4096u64;
        let mut sk = HeavyHittersSketch::new(10.0, 0.01, 5);
        for j in 0..l {
            sk.update(j, 1.0);
        }
        let hh = sk.recover_range(l);
        // Threshold is F2/(2B) = 4096/20 ≈ 205 >> 1.
        assert!(hh.len() < 10, "reported {} coordinates", hh.len());
    }

    #[test]
    fn distributed_merge_matches_central() {
        let mut rng = Rng::new(3);
        let l = 500usize;
        let mk = || HeavyHittersSketch::new(16.0, 0.01, 123);
        let mut parts: Vec<Vec<f64>> = (0..4)
            .map(|_| (0..l).map(|_| rng.gaussian() * 0.1).collect())
            .collect();
        // The heavy entry is split across servers (only the SUM is heavy).
        for p in parts.iter_mut() {
            p[250] += 5.0;
        }
        let mut merged = mk();
        for p in &parts {
            let mut s = mk();
            s.update_dense(p);
            merged.merge(&s);
        }
        let hh = merged.recover_range(l as u64);
        assert!(
            hh.iter().any(|h| h.index == 250),
            "sum-heavy coordinate missed"
        );
        let est = merged.estimate(250);
        assert!((est - 20.0).abs() < 2.0, "estimate {est}");
    }

    #[test]
    fn empty_sketch_reports_nothing() {
        let sk = HeavyHittersSketch::new(8.0, 0.1, 0);
        assert!(sk.recover_range(100).is_empty());
    }

    #[test]
    #[should_panic(expected = "different thresholds")]
    fn merge_rejects_mismatched_threshold() {
        let mut a = HeavyHittersSketch::new(8.0, 0.1, 0);
        let b = HeavyHittersSketch::new(9.0, 0.1, 0);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "threshold B")]
    fn rejects_tiny_b() {
        HeavyHittersSketch::new(0.5, 0.1, 0);
    }

    #[test]
    fn with_dims_controls_size() {
        let sk = HeavyHittersSketch::with_dims(8.0, 3, 64, 1);
        assert_eq!(sk.size_words(), 192);
    }
}
