//! AMS "tug-of-war" second-moment (`F₂ = ‖v‖₂²`) estimator.
//!
//! Each cell holds `Σⱼ σ(j)·vⱼ` for a 4-wise independent sign function σ;
//! squaring a cell gives an unbiased estimate of `F₂` with variance ≤ 2F₂².
//! We average `width` cells per row and take the median of `depth` rows
//! (the standard median-of-means construction). Like CountSketch, it is
//! linear and therefore mergeable across servers.

use crate::countsketch::median_in_place;
use crate::hashing::KWiseHash;

/// A seeded AMS F₂ sketch.
#[derive(Debug, Clone)]
pub struct AmsF2 {
    depth: usize,
    width: usize,
    seed: u64,
    /// Row-major `depth × width` of signed sums.
    cells: Vec<f64>,
    signs: Vec<KWiseHash>,
}

impl AmsF2 {
    /// Creates an empty estimator; same `(depth, width, seed)` ⇒ mergeable.
    pub fn new(depth: usize, width: usize, seed: u64) -> Self {
        assert!(depth > 0 && width > 0, "AmsF2 dimensions must be positive");
        let signs = (0..depth * width)
            .map(|c| KWiseHash::from_seed(4, seed ^ (0x517C_C1B7 + c as u64).rotate_left(23)))
            .collect();
        AmsF2 {
            depth,
            width,
            seed,
            cells: vec![0.0; depth * width],
            signs,
        }
    }

    /// Sketch size in words.
    pub fn size_words(&self) -> u64 {
        (self.depth * self.width) as u64
    }

    /// Number of rows.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Cells per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The construction seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The row-major cell array (the sketch's wire words).
    pub fn cells(&self) -> &[f64] {
        &self.cells
    }

    /// Replaces the cells from decoded wire words. Returns `false` (leaving
    /// the sketch untouched) if the length does not match.
    pub fn load_cells(&mut self, cells: &[f64]) -> bool {
        if cells.len() != self.cells.len() {
            return false;
        }
        self.cells.copy_from_slice(cells);
        true
    }

    /// Adds `delta` at coordinate `j`.
    pub fn update(&mut self, j: u64, delta: f64) {
        if delta == 0.0 {
            return;
        }
        for (cell, sign) in self.cells.iter_mut().zip(&self.signs) {
            *cell += sign.sign(j) * delta;
        }
    }

    /// Sketches a dense vector.
    pub fn update_dense(&mut self, v: &[f64]) {
        for (j, &x) in v.iter().enumerate() {
            self.update(j as u64, x);
        }
    }

    /// Median-of-means estimate of `‖v‖₂²`.
    pub fn estimate(&self) -> f64 {
        let mut row_means: Vec<f64> = (0..self.depth)
            .map(|r| {
                let row = &self.cells[r * self.width..(r + 1) * self.width];
                row.iter().map(|x| x * x).sum::<f64>() / self.width as f64
            })
            .collect();
        median_in_place(&mut row_means)
    }

    /// Merges a sketch with identical parameters (linearity).
    pub fn merge(&mut self, other: &AmsF2) {
        assert_eq!(
            (self.depth, self.width, self.seed),
            (other.depth, other.width, other.seed),
            "cannot merge AmsF2 with different parameters"
        );
        for (a, b) in self.cells.iter_mut().zip(&other.cells) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlra_util::Rng;

    #[test]
    fn single_coordinate_exact() {
        let mut s = AmsF2::new(5, 8, 1);
        s.update(42, 3.0);
        // Every cell is ±3, so every squared cell is exactly 9.
        assert!((s.estimate() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn estimates_random_vector() {
        let mut rng = Rng::new(2);
        let v: Vec<f64> = (0..1000).map(|_| rng.gaussian()).collect();
        let truth: f64 = v.iter().map(|x| x * x).sum();
        let mut s = AmsF2::new(9, 64, 3);
        s.update_dense(&v);
        let est = s.estimate();
        assert!(
            (est - truth).abs() < 0.35 * truth,
            "est {est} truth {truth}"
        );
    }

    #[test]
    fn merge_equals_joint() {
        let mut rng = Rng::new(4);
        let v1: Vec<f64> = (0..100).map(|_| rng.gaussian()).collect();
        let v2: Vec<f64> = (0..100).map(|_| rng.gaussian()).collect();
        let mut a = AmsF2::new(4, 16, 5);
        let mut b = AmsF2::new(4, 16, 5);
        let mut joint = AmsF2::new(4, 16, 5);
        a.update_dense(&v1);
        b.update_dense(&v2);
        for j in 0..100 {
            joint.update(j as u64, v1[j] + v2[j]);
        }
        a.merge(&b);
        assert!((a.estimate() - joint.estimate()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "different parameters")]
    fn merge_rejects_mismatch() {
        let mut a = AmsF2::new(2, 4, 1);
        a.merge(&AmsF2::new(2, 4, 2));
    }

    #[test]
    fn empty_sketch_estimates_zero() {
        assert_eq!(AmsF2::new(3, 4, 0).estimate(), 0.0);
    }

    #[test]
    fn unbiasedness_over_draws() {
        // Average estimate over independent seeds approaches the truth.
        let v = [1.0, -2.0, 3.0, 0.5];
        let truth: f64 = v.iter().map(|x| x * x).sum();
        let mean: f64 = (0..300)
            .map(|seed| {
                let mut s = AmsF2::new(1, 1, seed);
                s.update_dense(&v);
                s.estimate()
            })
            .sum::<f64>()
            / 300.0;
        assert!(
            (mean - truth).abs() < 0.25 * truth,
            "mean {mean} truth {truth}"
        );
    }
}
