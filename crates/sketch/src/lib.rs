//! Linear sketches used by the distributed samplers.
//!
//! Everything here is a *linear* function of the input vector, so a sketch of
//! `v = Σₜ vᵗ` is obtained by having each server sketch its local `vᵗ` with
//! the **same seeds** (broadcast by the coordinator) and summing the sketch
//! tables — which is exactly how the paper turns the streaming
//! CountSketch-based `HeavyHitters` of Charikar–Chen–Farach-Colton [21] into
//! a distributed protocol (§V-B).
//!
//! * [`hashing`] — k-wise independent polynomial hashing over the Mersenne
//!   prime `2⁶¹ − 1`;
//! * [`countsketch`] — CountSketch with median point queries and the built-in
//!   AMS-style `F₂` estimate;
//! * [`ams`] — a standalone tug-of-war `F₂` (second moment) estimator;
//! * [`heavy_hitters`] — recovery of all coordinates with
//!   `v_j² ≥ ‖v‖²/B` from a CountSketch.

#![forbid(unsafe_code)]
pub mod ams;
pub mod countmin;
pub mod countsketch;
pub mod hashing;
pub mod heavy_hitters;

pub use ams::AmsF2;
pub use countmin::CountMin;
pub use countsketch::CountSketch;
pub use hashing::{KWiseHash, PairwiseHash};
pub use heavy_hitters::{HeavyHitter, HeavyHittersSketch};
