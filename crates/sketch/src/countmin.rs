//! CountMin sketch — deterministic *over*-estimates for nonnegative data.
//!
//! The GM-pooling workloads (§VI-B) sketch locally powered count matrices,
//! which are entrywise nonnegative; for such streams CountMin's one-sided
//! error (`v̂_j ∈ [v_j, v_j + ε‖v‖₁]` w.h.p.) can be preferable to
//! CountSketch's two-sided error: a heavy coordinate is never *under*-
//! estimated, so recovery never misses one. Like every sketch here it is
//! linear over nonnegative updates and mergeable across servers from a
//! shared seed.

use crate::hashing::KWiseHash;

/// A seeded CountMin sketch over `u64`-indexed nonnegative coordinates.
#[derive(Debug, Clone)]
pub struct CountMin {
    depth: usize,
    width: usize,
    seed: u64,
    table: Vec<f64>,
    hashes: Vec<KWiseHash>,
}

impl CountMin {
    /// Creates an empty sketch; identical `(depth, width, seed)` ⇒ mergeable.
    pub fn new(depth: usize, width: usize, seed: u64) -> Self {
        assert!(
            depth > 0 && width > 0,
            "CountMin dimensions must be positive"
        );
        let hashes = (0..depth)
            .map(|r| KWiseHash::from_seed(2, seed ^ (0x3C6E_F372 + r as u64).rotate_left(13)))
            .collect();
        CountMin {
            depth,
            width,
            seed,
            table: vec![0.0; depth * width],
            hashes,
        }
    }

    /// Sketch size in words.
    pub fn size_words(&self) -> u64 {
        (self.depth * self.width) as u64
    }

    /// Number of rows.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Buckets per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The construction seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The row-major counter table (the sketch's wire words).
    pub fn table(&self) -> &[f64] {
        &self.table
    }

    /// Replaces the counter table from decoded wire words. Returns `false`
    /// (leaving the sketch untouched) if the length does not match.
    pub fn load_table(&mut self, table: &[f64]) -> bool {
        if table.len() != self.table.len() {
            return false;
        }
        self.table.copy_from_slice(table);
        true
    }

    /// Adds `delta ≥ 0` at coordinate `j`. Panics on negative updates — the
    /// one-sided guarantee only holds for nonnegative streams.
    pub fn update(&mut self, j: u64, delta: f64) {
        assert!(delta >= 0.0, "CountMin requires nonnegative updates");
        if delta == 0.0 {
            return;
        }
        for r in 0..self.depth {
            let b = self.hashes[r].bucket(j, self.width);
            self.table[r * self.width + b] += delta;
        }
    }

    /// Sketches a dense nonnegative vector.
    pub fn update_dense(&mut self, v: &[f64]) {
        for (j, &x) in v.iter().enumerate() {
            self.update(j as u64, x);
        }
    }

    /// Point query: minimum over rows — never an underestimate.
    pub fn estimate(&self, j: u64) -> f64 {
        (0..self.depth)
            .map(|r| self.table[r * self.width + self.hashes[r].bucket(j, self.width)])
            .fold(f64::INFINITY, f64::min)
    }

    /// Total mass `‖v‖₁` (exact: every row holds the full sum).
    pub fn l1(&self) -> f64 {
        self.table[..self.width].iter().sum()
    }

    /// Merges a sketch with identical parameters.
    pub fn merge(&mut self, other: &CountMin) {
        assert_eq!(
            (self.depth, self.width, self.seed),
            (other.depth, other.width, other.seed),
            "cannot merge CountMin with different parameters"
        );
        for (a, b) in self.table.iter_mut().zip(&other.table) {
            *a += b;
        }
    }

    /// All candidates with estimate ≥ `threshold` among `0..l` — never
    /// misses a true heavy coordinate (one-sided error).
    pub fn heavy_candidates(&self, l: u64, threshold: f64) -> Vec<u64> {
        (0..l).filter(|&j| self.estimate(j) >= threshold).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlra_util::Rng;

    #[test]
    fn never_underestimates() {
        let mut rng = Rng::new(1);
        let l = 2000usize;
        let v: Vec<f64> = (0..l).map(|_| rng.f64() * 2.0).collect();
        let mut cm = CountMin::new(4, 128, 7);
        cm.update_dense(&v);
        for (j, &vj) in v.iter().enumerate() {
            assert!(cm.estimate(j as u64) >= vj - 1e-12, "underestimate at {j}");
        }
    }

    #[test]
    fn overestimate_bounded_by_l1_over_width() {
        let mut rng = Rng::new(2);
        let l = 4000usize;
        let v: Vec<f64> = (0..l).map(|_| rng.f64()).collect();
        let l1: f64 = v.iter().sum();
        let width = 512;
        let mut cm = CountMin::new(5, width, 3);
        cm.update_dense(&v);
        // Markov: expected per-row excess is l1/width; the min over 5 rows
        // should rarely exceed a few times that.
        let bound = 8.0 * l1 / width as f64;
        let violations = (0..l)
            .filter(|&j| cm.estimate(j as u64) - v[j] > bound)
            .count();
        assert!(
            violations < l / 100,
            "{violations} coordinates exceed the excess bound"
        );
    }

    #[test]
    fn l1_is_exact() {
        let mut cm = CountMin::new(3, 16, 4);
        cm.update(1, 2.5);
        cm.update(900, 4.0);
        assert!((cm.l1() - 6.5).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_joint() {
        let mut rng = Rng::new(5);
        let v1: Vec<f64> = (0..300).map(|_| rng.f64()).collect();
        let v2: Vec<f64> = (0..300).map(|_| rng.f64()).collect();
        let mut a = CountMin::new(4, 64, 9);
        let mut b = CountMin::new(4, 64, 9);
        let mut joint = CountMin::new(4, 64, 9);
        a.update_dense(&v1);
        b.update_dense(&v2);
        for j in 0..300 {
            joint.update(j as u64, v1[j] + v2[j]);
        }
        a.merge(&b);
        for j in 0..300u64 {
            assert!((a.estimate(j) - joint.estimate(j)).abs() < 1e-9);
        }
    }

    #[test]
    fn heavy_candidates_complete() {
        let mut rng = Rng::new(6);
        let l = 5000u64;
        let mut cm = CountMin::new(5, 256, 11);
        let mut v = vec![0.0f64; l as usize];
        for x in v.iter_mut() {
            *x = rng.f64() * 0.1;
        }
        v[123] = 50.0;
        v[4000] = 80.0;
        cm.update_dense(&v);
        let cands = cm.heavy_candidates(l, 40.0);
        assert!(cands.contains(&123));
        assert!(cands.contains(&4000));
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn rejects_negative_updates() {
        CountMin::new(2, 8, 0).update(3, -1.0);
    }

    #[test]
    #[should_panic(expected = "different parameters")]
    fn merge_rejects_mismatch() {
        let mut a = CountMin::new(2, 8, 1);
        a.merge(&CountMin::new(2, 8, 2));
    }
}
