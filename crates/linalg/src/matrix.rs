//! Row-major dense matrix and the multiplicative / elementwise kernels.

use crate::{LinalgError, Result};
use dlra_util::Rng;
use std::sync::Arc;

/// A dense row-major matrix of `f64`.
///
/// Rows are the paper's "data points": `A ∈ ℝⁿˣᵈ` holds `n` points in `d`
/// dimensions, and `a.row(i)` is the contiguous slice for point `i`.
///
/// # Copy-on-write storage
///
/// The entry buffer is `Arc`-shared: `clone()` is O(1) and the clones alias
/// the same storage until one of them is mutated, at which point the mutating
/// matrix takes a private copy (`Arc::make_mut`). An unshared matrix mutates
/// in place with no copy. This is what lets a resident dataset serve many
/// concurrent queries without per-query deep copies (`dlra-runtime`), while
/// every `&mut` kernel keeps value semantics: writes through one handle are
/// never visible through another. [`Matrix::shares_storage`] /
/// [`Matrix::storage_refcount`] observe the sharing for tests.
///
/// ```
/// use dlra_linalg::Matrix;
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
/// assert_eq!(a[(1, 0)], 3.0);
/// assert_eq!(a.matmul(&Matrix::identity(2)).unwrap(), a);
/// assert_eq!(a.frobenius_norm_sq(), 30.0);
///
/// let mut b = a.clone();
/// assert!(b.shares_storage(&a)); // no data copied yet
/// b.scale(2.0);                  // first write detaches b
/// assert!(!b.shares_storage(&a));
/// assert_eq!(a[(0, 0)], 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Arc<Vec<f64>>,
}

impl Matrix {
    /// An `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: Arc::new(vec![0.0; rows * cols]),
        }
    }

    /// Exclusive access to the entry buffer, detaching from any shared
    /// storage first (the copy-on-write point: unshared matrices mutate in
    /// place, shared ones take a private copy on this call).
    #[inline]
    fn data_mut(&mut self) -> &mut Vec<f64> {
        Arc::make_mut(&mut self.data)
    }

    /// `true` when `self` and `other` alias the same underlying entry
    /// buffer (i.e. one is an unmutated clone of the other).
    #[inline]
    pub fn shares_storage(&self, other: &Matrix) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// Number of matrices currently sharing this storage (the `Arc` strong
    /// count). `1` means exclusively owned; tests use this to prove that a
    /// code path did or did not copy matrix data.
    #[inline]
    pub fn storage_refcount(&self) -> usize {
        Arc::strong_count(&self.data)
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a generator invoked as `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix {
            rows,
            cols,
            data: Arc::new(data),
        }
    }

    /// Builds a matrix from row slices; all rows must have equal length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = Vec::with_capacity(r * c);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != c {
                return Err(LinalgError::ShapeMismatch(format!(
                    "from_rows: row {i} has length {} but row 0 has length {c}",
                    row.len()
                )));
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: r,
            cols: c,
            data: Arc::new(data),
        })
    }

    /// Wraps an existing row-major buffer. `data.len()` must equal `rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch(format!(
                "from_vec: buffer of {} for {rows}x{cols}",
                data.len()
            )));
        }
        Ok(Matrix {
            rows,
            cols,
            data: Arc::new(data),
        })
    }

    /// A matrix with i.i.d. standard normal entries.
    pub fn gaussian(rows: usize, cols: usize, rng: &mut Rng) -> Self {
        Matrix::from_fn(rows, cols, |_, _| rng.gaussian())
    }

    /// A matrix with i.i.d. uniform entries in `[lo, hi)`.
    pub fn uniform(rows: usize, cols: usize, lo: f64, hi: f64, rng: &mut Rng) -> Self {
        Matrix::from_fn(rows, cols, |_, _| rng.range_f64(lo, hi))
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Contiguous slice of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable slice of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        let c = self.cols;
        &mut self.data_mut()[i * c..(i + 1) * c]
    }

    /// Column `j` copied into a fresh vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        debug_assert!(j < self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        self.data_mut()
    }

    /// Transpose into a new matrix (cache-blocked tile swap; parallel over
    /// output row panels for large matrices).
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        let out = Arc::get_mut(&mut t.data).expect("fresh buffer is unshared");
        crate::kernels::transpose_into(&self.data, self.rows, self.cols, out);
        t
    }

    /// Matrix product `self * other` — cache-blocked, register-tiled, and
    /// parallel over output row panels (see [`crate::kernels`]). The
    /// summation order per output element is fixed (ascending contraction
    /// index), so results are bit-identical across block sizes and thread
    /// counts, and non-finite inputs propagate per IEEE 754.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch(format!(
                "matmul: {}x{} * {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        let out_data = Arc::get_mut(&mut out.data).expect("fresh buffer is unshared");
        crate::kernels::matmul_into(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.cols,
            out_data,
        );
        Ok(out)
    }

    /// Matrix–vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if self.cols != x.len() {
            return Err(LinalgError::ShapeMismatch(format!(
                "matvec: {}x{} * len {}",
                self.rows,
                self.cols,
                x.len()
            )));
        }
        Ok((0..self.rows).map(|i| dot(self.row(i), x)).collect())
    }

    /// Gram matrix `selfᵀ * self` (symmetric `cols × cols`), computed as a sum
    /// of row outer products — a single pass over the rows, which is how the
    /// coordinator accumulates `BᵀB` in the protocols. Upper triangle is
    /// computed blocked/parallel, then mirrored.
    pub fn gram(&self) -> Matrix {
        let d = self.cols;
        let mut g = Matrix::zeros(d, d);
        let gd = Arc::get_mut(&mut g.data).expect("fresh buffer is unshared");
        crate::kernels::gram_upper_into(&self.data, self.rows, d, gd);
        // Mirror the upper triangle.
        for p in 0..d {
            for q in (p + 1)..d {
                gd[q * d + p] = gd[p * d + q];
            }
        }
        g
    }

    /// Squared Frobenius norm `‖A‖²_F = Σ A²ᵢⱼ`.
    pub fn frobenius_norm_sq(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.frobenius_norm_sq().sqrt()
    }

    /// Squared Euclidean norm of row `i`.
    #[inline]
    pub fn row_norm_sq(&self, i: usize) -> f64 {
        self.row(i).iter().map(|x| x * x).sum()
    }

    /// All squared row norms (the FKV sampling weights for `f = identity`).
    pub fn row_norms_sq(&self) -> Vec<f64> {
        (0..self.rows).map(|i| self.row_norm_sq(i)).collect()
    }

    /// Elementwise sum; shapes must match.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Elementwise difference; shapes must match.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Adds `other` into `self` in place.
    pub fn add_assign(&mut self, other: &Matrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch(format!(
                "add_assign: {:?} vs {:?}",
                self.shape(),
                other.shape()
            )));
        }
        for (a, b) in self.data_mut().iter_mut().zip(other.data.iter()) {
            *a += b;
        }
        Ok(())
    }

    /// Scales every entry by `c` in place.
    pub fn scale(&mut self, c: f64) {
        for x in self.data_mut() {
            *x *= c;
        }
    }

    /// Returns a scaled copy.
    pub fn scaled(&self, c: f64) -> Matrix {
        let mut m = self.clone();
        m.scale(c);
        m
    }

    /// Applies `f` entrywise, returning a new matrix. This is the `f(·)` of
    /// the generalized partition model applied to an aggregated matrix.
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: Arc::new(self.data.iter().map(|&x| f(x)).collect()),
        }
    }

    /// Extracts the listed rows (with repetition allowed) into a new matrix.
    pub fn select_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (r, &i) in idx.iter().enumerate() {
            out.row_mut(r).copy_from_slice(self.row(i));
        }
        out
    }

    /// Extracts the contiguous column block `[j0, j1)` into a new matrix.
    pub fn select_col_block(&self, j0: usize, j1: usize) -> Matrix {
        debug_assert!(j0 <= j1 && j1 <= self.cols);
        let mut out = Matrix::zeros(self.rows, j1 - j0);
        for i in 0..self.rows {
            out.row_mut(i).copy_from_slice(&self.row(i)[j0..j1]);
        }
        out
    }

    /// Horizontal concatenation `[self | other]`.
    pub fn hstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(LinalgError::ShapeMismatch(format!(
                "hstack: {} vs {} rows",
                self.rows, other.rows
            )));
        }
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(other.row(i));
        }
        Ok(out)
    }

    /// Vertical concatenation `[self ; other]`.
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch(format!(
                "vstack: {} vs {} cols",
                self.cols, other.cols
            )));
        }
        let mut data = (*self.data).clone();
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data: Arc::new(data),
        })
    }

    /// Max absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, x| m.max(x.abs()))
    }

    /// Sum of diagonal entries (square matrices).
    pub fn trace(&self) -> f64 {
        debug_assert_eq!(self.rows, self.cols, "trace of a non-square matrix");
        (0..self.rows.min(self.cols)).map(|i| self[(i, i)]).sum()
    }

    /// A square diagonal matrix from the given entries.
    pub fn from_diag(diag: &[f64]) -> Matrix {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &v) in diag.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Iterator over row slices.
    pub fn row_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// All squared column norms.
    pub fn col_norms_sq(&self) -> Vec<f64> {
        let mut out = vec![0.0f64; self.cols];
        for i in 0..self.rows {
            for (j, &x) in self.row(i).iter().enumerate() {
                out[j] += x * x;
            }
        }
        out
    }

    /// `selfᵀ · other` without materializing the transpose
    /// (`(cols × other.cols)` result) — blocked and panel-parallel like
    /// [`Matrix::matmul`], with a fixed (ascending row index) summation
    /// order per output element.
    pub fn transpose_matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(LinalgError::ShapeMismatch(format!(
                "transpose_matmul: {}x{} ᵀ· {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.cols, other.cols);
        let out_data = Arc::get_mut(&mut out.data).expect("fresh buffer is unshared");
        crate::kernels::transpose_matmul_into(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.cols,
            out_data,
        );
        Ok(out)
    }

    /// Scales each row to unit Euclidean norm (zero rows left untouched).
    pub fn normalize_rows(&mut self) {
        for i in 0..self.rows {
            let n = self.row_norm_sq(i).sqrt();
            if n > 0.0 {
                for x in self.row_mut(i) {
                    *x /= n;
                }
            }
        }
    }

    fn zip_with(&self, other: &Matrix, op: &str, f: impl Fn(f64, f64) -> f64) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch(format!(
                "{op}: {:?} vs {:?}",
                self.shape(),
                other.shape()
            )));
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: Arc::new(
                self.data
                    .iter()
                    .zip(other.data.iter())
                    .map(|(&a, &b)| f(a, b))
                    .collect(),
            ),
        })
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        let idx = i * self.cols + j;
        &mut self.data_mut()[idx]
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean norm of a slice.
#[inline]
pub fn norm_sq(a: &[f64]) -> f64 {
    a.iter().map(|x| x * x).sum()
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    norm_sq(a).sqrt()
}

/// `y += c * x` (axpy).
#[inline]
pub fn axpy(c: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += c * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[&[f64]]) -> Matrix {
        Matrix::from_rows(&rows.iter().map(|r| r.to_vec()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn construction_and_indexing() {
        let a = m(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.shape(), (2, 2));
        assert_eq!(a[(0, 1)], 2.0);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let r = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
        assert!(matches!(r, Err(LinalgError::ShapeMismatch(_))));
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = m(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let i3 = Matrix::identity(3);
        assert_eq!(a.matmul(&i3).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = m(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = m(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, m(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_shape_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = m(&[&[1.0, -1.0, 2.0], &[0.5, 0.0, 3.0]]);
        let x = vec![2.0, 1.0, -1.0];
        let y = a.matvec(&x).unwrap();
        assert_eq!(y, vec![-1.0, -2.0]);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = Rng::new(1);
        let a = Matrix::gaussian(4, 7, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn gram_matches_explicit_product() {
        let mut rng = Rng::new(2);
        let a = Matrix::gaussian(6, 4, &mut rng);
        let g = a.gram();
        let g2 = a.transpose().matmul(&a).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                assert!((g[(i, j)] - g2[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gram_is_symmetric() {
        let mut rng = Rng::new(3);
        let a = Matrix::gaussian(5, 3, &mut rng);
        let g = a.gram();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(g[(i, j)], g[(j, i)]);
            }
        }
    }

    #[test]
    fn frobenius_norm_values() {
        let a = m(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert_eq!(a.frobenius_norm_sq(), 25.0);
        assert_eq!(a.frobenius_norm(), 5.0);
        assert_eq!(a.row_norm_sq(1), 16.0);
        assert_eq!(a.row_norms_sq(), vec![9.0, 16.0]);
    }

    #[test]
    fn add_sub_scale() {
        let a = m(&[&[1.0, 2.0]]);
        let b = m(&[&[3.0, 5.0]]);
        assert_eq!(a.add(&b).unwrap(), m(&[&[4.0, 7.0]]));
        assert_eq!(b.sub(&a).unwrap(), m(&[&[2.0, 3.0]]));
        assert_eq!(a.scaled(2.0), m(&[&[2.0, 4.0]]));
        let mut c = a.clone();
        c.add_assign(&b).unwrap();
        assert_eq!(c, m(&[&[4.0, 7.0]]));
    }

    #[test]
    fn map_applies_entrywise() {
        let a = m(&[&[-1.0, 2.0], &[-3.0, 4.0]]);
        assert_eq!(a.map(f64::abs), m(&[&[1.0, 2.0], &[3.0, 4.0]]));
    }

    #[test]
    fn select_rows_with_repeats() {
        let a = m(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let s = a.select_rows(&[2, 0, 2]);
        assert_eq!(s, m(&[&[3.0, 3.0], &[1.0, 1.0], &[3.0, 3.0]]));
    }

    #[test]
    fn stack_operations() {
        let a = m(&[&[1.0], &[2.0]]);
        let b = m(&[&[3.0], &[4.0]]);
        assert_eq!(a.hstack(&b).unwrap(), m(&[&[1.0, 3.0], &[2.0, 4.0]]));
        assert_eq!(a.vstack(&b).unwrap(), m(&[&[1.0], &[2.0], &[3.0], &[4.0]]));
        assert!(a.hstack(&m(&[&[1.0]])).is_err());
        assert!(a.vstack(&m(&[&[1.0, 2.0]])).is_err());
    }

    #[test]
    fn select_col_block_extracts() {
        let a = m(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.select_col_block(1, 3), m(&[&[2.0, 3.0], &[5.0, 6.0]]));
    }

    #[test]
    fn slice_helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm_sq(&[3.0, 4.0]), 25.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0]);
    }

    #[test]
    fn max_abs_value() {
        let a = m(&[&[-7.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.max_abs(), 7.0);
    }

    #[test]
    fn trace_and_diag() {
        let d = Matrix::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d.trace(), 6.0);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn row_iter_yields_all_rows() {
        let a = m(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let rows: Vec<&[f64]> = a.row_iter().collect();
        assert_eq!(rows, vec![&[1.0, 2.0][..], &[3.0, 4.0][..]]);
    }

    #[test]
    fn col_norms_match_transpose_row_norms() {
        let mut rng = Rng::new(5);
        let a = Matrix::gaussian(6, 4, &mut rng);
        let cols = a.col_norms_sq();
        let trans = a.transpose().row_norms_sq();
        for (c, t) in cols.iter().zip(&trans) {
            assert!((c - t).abs() < 1e-12);
        }
    }

    #[test]
    fn transpose_matmul_matches_explicit() {
        let mut rng = Rng::new(6);
        let a = Matrix::gaussian(7, 3, &mut rng);
        let b = Matrix::gaussian(7, 5, &mut rng);
        let fast = a.transpose_matmul(&b).unwrap();
        let slow = a.transpose().matmul(&b).unwrap();
        assert!(fast.sub(&slow).unwrap().frobenius_norm() < 1e-12);
        assert!(a.transpose_matmul(&Matrix::zeros(6, 2)).is_err());
    }

    #[test]
    fn normalize_rows_unit_norm() {
        let mut a = m(&[&[3.0, 4.0], &[0.0, 0.0], &[0.0, -2.0]]);
        a.normalize_rows();
        assert!((a.row_norm_sq(0) - 1.0).abs() < 1e-12);
        assert_eq!(a.row(1), &[0.0, 0.0]); // zero row untouched
        assert_eq!(a.row(2), &[0.0, -1.0]);
    }

    #[test]
    fn clone_is_shared_until_first_write() {
        let mut rng = Rng::new(9);
        let a = Matrix::gaussian(5, 4, &mut rng);
        let b = a.clone();
        assert!(b.shares_storage(&a));
        assert_eq!(a.storage_refcount(), 2);
        // Reads never detach.
        assert_eq!(b.frobenius_norm_sq(), a.frobenius_norm_sq());
        let _ = b.row(2);
        assert!(b.shares_storage(&a));
    }

    #[test]
    fn clone_then_add_assign_leaves_original_untouched() {
        let a = m(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let delta = m(&[&[10.0, 10.0], &[10.0, 10.0]]);
        let mut b = a.clone();
        b.add_assign(&delta).unwrap();
        assert!(!b.shares_storage(&a));
        assert_eq!(a, m(&[&[1.0, 2.0], &[3.0, 4.0]]));
        assert_eq!(b, m(&[&[11.0, 12.0], &[13.0, 14.0]]));
    }

    #[test]
    fn every_mutator_detaches_from_shared_storage() {
        let base = m(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let cases: Vec<fn(&mut Matrix)> = vec![
            |x| x.scale(2.0),
            |x| x[(0, 0)] = 99.0,
            |x| x.row_mut(1)[0] = 99.0,
            |x| x.as_mut_slice()[3] = 99.0,
            |x| x.normalize_rows(),
            |x| x.add_assign(&Matrix::identity(2)).unwrap(),
        ];
        for (i, mutate) in cases.into_iter().enumerate() {
            let mut c = base.clone();
            assert!(c.shares_storage(&base), "case {i}: clone not shared");
            mutate(&mut c);
            assert!(!c.shares_storage(&base), "case {i}: write did not detach");
            assert_eq!(
                base,
                m(&[&[1.0, 2.0], &[3.0, 4.0]]),
                "case {i}: write leaked into the shared original"
            );
        }
    }

    #[test]
    fn unshared_mutation_copies_nothing() {
        let mut rng = Rng::new(11);
        let mut a = Matrix::gaussian(6, 3, &mut rng);
        assert_eq!(a.storage_refcount(), 1);
        let before = a.as_slice().as_ptr();
        a.scale(0.5);
        a.row_mut(0)[0] = 1.0;
        assert_eq!(
            a.as_slice().as_ptr(),
            before,
            "exclusively owned storage must mutate in place"
        );
    }

    #[test]
    fn zero_times_nan_propagates_in_matmul() {
        // Regression: the seed kernel skipped `aik == 0.0`, silently
        // swallowing `0.0 * NaN` and masking non-finite inputs.
        let a = m(&[&[0.0, 1.0]]);
        let b = m(&[&[f64::NAN], &[2.0]]);
        let c = a.matmul(&b).unwrap();
        assert!(
            c[(0, 0)].is_nan(),
            "0·NaN must propagate, got {}",
            c[(0, 0)]
        );

        let inf = m(&[&[f64::INFINITY], &[3.0]]);
        let c = a.matmul(&inf).unwrap();
        assert!(c[(0, 0)].is_nan(), "0·∞ must yield NaN, got {}", c[(0, 0)]);
    }

    #[test]
    fn zero_times_nan_propagates_in_transpose_matmul_and_gram() {
        let a = m(&[&[0.0, 5.0], &[f64::NAN, 1.0]]);
        let b = m(&[&[1.0, 1.0], &[0.0, 1.0]]);
        // aᵀ·b touches the NaN row for every output in column p = 0 and 1.
        let t = a.transpose_matmul(&b).unwrap();
        assert!(t[(0, 0)].is_nan());
        // gram: column 0 contains NaN, so every entry touching it is NaN;
        // the (1,1) entry never multiplies the NaN and stays finite.
        let g = a.gram();
        assert!(g[(0, 0)].is_nan() && g[(0, 1)].is_nan() && g[(1, 0)].is_nan());
        assert_eq!(g[(1, 1)], 26.0);
    }

    #[test]
    fn zero_sized_matrices() {
        let a = Matrix::zeros(0, 5);
        assert_eq!(a.rows(), 0);
        assert_eq!(a.frobenius_norm_sq(), 0.0);
        let g = a.gram();
        assert_eq!(g.shape(), (5, 5));
        assert_eq!(g.frobenius_norm_sq(), 0.0);
    }
}
