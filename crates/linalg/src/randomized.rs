//! Randomized range-finder SVD (Halko–Martinsson–Tropp style subspace
//! iteration).
//!
//! The exact Jacobi SVD is the reference implementation used by Algorithm 1
//! on the small sampled matrix `B`, but evaluation code repeatedly needs
//! top-k structure of *large* global matrices where a full SVD is wasteful.
//! `randomized_svd` sketches the range with a Gaussian test matrix, runs a
//! few power iterations with QR re-orthonormalization, and reduces to an
//! exact SVD of a small projected matrix — accurate to the spectral gap and
//! an order of magnitude faster at the sizes the figure harness touches.

use crate::matrix::Matrix;
use crate::qr::orthonormalize_columns;
use crate::svd::{svd, Svd};
use crate::{LinalgError, Result};
use dlra_util::Rng;

/// Configuration for the randomized SVD.
#[derive(Debug, Clone, Copy)]
pub struct RandomizedSvdConfig {
    /// Extra sketch columns beyond `k` (default 8).
    pub oversample: usize,
    /// Power iterations (default 2; raise for slowly decaying spectra).
    pub power_iters: usize,
}

impl Default for RandomizedSvdConfig {
    fn default() -> Self {
        RandomizedSvdConfig {
            oversample: 8,
            power_iters: 2,
        }
    }
}

/// Approximate top-`k` SVD of `a` by randomized subspace iteration.
///
/// Returns a thin [`Svd`] with at most `k` components (fewer if the
/// numerical rank is smaller).
pub fn randomized_svd(
    a: &Matrix,
    k: usize,
    cfg: RandomizedSvdConfig,
    rng: &mut Rng,
) -> Result<Svd> {
    if k == 0 {
        return Err(LinalgError::InvalidArgument(
            "randomized_svd: k must be >= 1".into(),
        ));
    }
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Ok(Svd {
            u: Matrix::zeros(m, 0),
            s: vec![],
            vt: Matrix::zeros(0, n),
        });
    }
    let sketch = (k + cfg.oversample).min(n).min(m);
    // Range finder: Y = A·Ω, orthonormalize; power iterations
    // Y ← A·(Aᵀ·Q) sharpen the spectrum.
    let omega = Matrix::gaussian(n, sketch, rng);
    let mut q = orthonormalize_columns(&a.matmul(&omega)?);
    for _ in 0..cfg.power_iters {
        let z = orthonormalize_columns(&a.transpose().matmul(&q)?);
        q = orthonormalize_columns(&a.matmul(&z)?);
    }
    if q.cols() == 0 {
        // Zero matrix.
        return Ok(Svd {
            u: Matrix::zeros(m, 0),
            s: vec![],
            vt: Matrix::zeros(0, n),
        });
    }
    // Project: C = Qᵀ·A (small: sketch × n), take its exact SVD.
    let c = q.transpose().matmul(a)?;
    let inner = svd(&c)?;
    let keep = k.min(inner.s.len());
    // U = Q·U_c (m × keep).
    let u_small = Matrix::from_fn(q.cols(), keep, |i, j| inner.u[(i, j)]);
    let u = q.matmul(&u_small)?;
    let s = inner.s[..keep].to_vec();
    let vt = Matrix::from_fn(keep, n, |i, j| inner.vt[(i, j)]);
    Ok(Svd { u, s, vt })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planted(m: usize, n: usize, k: usize, decay: f64, rng: &mut Rng) -> Matrix {
        // Orthogonal-ish factors with geometric singular values.
        let u = orthonormalize_columns(&Matrix::gaussian(m, k, rng));
        let v = orthonormalize_columns(&Matrix::gaussian(n, k, rng));
        let mut out = Matrix::zeros(m, n);
        for j in 0..k.min(u.cols()).min(v.cols()) {
            let sv = decay.powi(j as i32) * 10.0;
            for r in 0..m {
                for c in 0..n {
                    out[(r, c)] += sv * u[(r, j)] * v[(c, j)];
                }
            }
        }
        out
    }

    #[test]
    fn matches_exact_singular_values() {
        let mut rng = Rng::new(1);
        let a = planted(120, 40, 8, 0.7, &mut rng);
        let exact = svd(&a).unwrap();
        let approx = randomized_svd(&a, 5, RandomizedSvdConfig::default(), &mut rng).unwrap();
        assert_eq!(approx.s.len(), 5);
        for j in 0..5 {
            let rel = (approx.s[j] - exact.s[j]).abs() / exact.s[j];
            assert!(rel < 1e-6, "σ_{j}: {} vs {}", approx.s[j], exact.s[j]);
        }
    }

    #[test]
    fn projection_captures_top_subspace() {
        let mut rng = Rng::new(2);
        let a = planted(200, 60, 6, 0.5, &mut rng);
        let k = 4;
        let approx = randomized_svd(&a, k, RandomizedSvdConfig::default(), &mut rng).unwrap();
        let v = approx.top_right_vectors(k);
        let p = v.matmul(&v.transpose()).unwrap();
        let res = crate::lowrank::residual_sq(&a, &p).unwrap();
        let best = svd(&a).unwrap().tail_energy(k);
        assert!(
            res < best * 1.001 + 1e-9 * a.frobenius_norm_sq(),
            "res {res} vs best {best}"
        );
    }

    #[test]
    fn noisy_matrix_close_to_exact() {
        let mut rng = Rng::new(3);
        let mut a = planted(150, 50, 5, 0.6, &mut rng);
        a.add_assign(&Matrix::gaussian(150, 50, &mut rng).scaled(0.05))
            .unwrap();
        let k = 3;
        let approx = randomized_svd(&a, k, RandomizedSvdConfig::default(), &mut rng).unwrap();
        let exact = svd(&a).unwrap();
        let v = approx.top_right_vectors(k);
        let p = v.matmul(&v.transpose()).unwrap();
        let res = crate::lowrank::residual_sq(&a, &p).unwrap();
        let best = exact.tail_energy(k);
        assert!(res < 1.05 * best, "res {res} vs best {best}");
    }

    #[test]
    fn handles_rank_deficiency() {
        let mut rng = Rng::new(4);
        let a = planted(40, 20, 2, 0.5, &mut rng);
        // Ask for more than the true rank: the range finder collapses to the
        // numerical rank, so at most ~2 meaningful components come back.
        let approx = randomized_svd(&a, 10, RandomizedSvdConfig::default(), &mut rng).unwrap();
        assert!(approx.s[0] > 1.0);
        assert!(approx.s.len() >= 2);
        for &sv in approx.s.iter().skip(2) {
            assert!(sv < 1e-6 * approx.s[0], "spurious σ = {sv}");
        }
    }

    #[test]
    fn zero_matrix_and_bad_k() {
        let mut rng = Rng::new(5);
        let z = Matrix::zeros(10, 6);
        let out = randomized_svd(&z, 3, RandomizedSvdConfig::default(), &mut rng).unwrap();
        assert!(out.s.is_empty() || out.s.iter().all(|&x| x < 1e-12));
        assert!(randomized_svd(&z, 0, RandomizedSvdConfig::default(), &mut rng).is_err());
    }

    #[test]
    fn power_iterations_help_flat_spectra() {
        let mut rng = Rng::new(6);
        let a = planted(150, 60, 30, 0.95, &mut rng); // slow decay
        let k = 5;
        let exact_tail = svd(&a).unwrap().tail_energy(k);
        let total = a.frobenius_norm_sq();
        let res_of = |iters: usize, rng: &mut Rng| {
            let cfg = RandomizedSvdConfig {
                oversample: 4,
                power_iters: iters,
            };
            let approx = randomized_svd(&a, k, cfg, rng).unwrap();
            let v = approx.top_right_vectors(k);
            let p = v.matmul(&v.transpose()).unwrap();
            crate::lowrank::residual_sq(&a, &p).unwrap()
        };
        let r0 = res_of(0, &mut rng);
        let r3 = res_of(3, &mut rng);
        // More power iterations must not hurt, and both stay sane.
        assert!(r3 <= r0 * 1.001, "r3 {r3} vs r0 {r0}");
        assert!(r3 >= exact_tail - 1e-9 * total);
    }
}
