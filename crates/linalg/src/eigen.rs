//! Cyclic Jacobi eigensolver for real symmetric matrices.
//!
//! Used for eigendecomposition of Gram matrices (`AᵀA`) when only the right
//! singular structure is needed, and as an independent cross-check of the
//! one-sided Jacobi SVD in tests.

use crate::matrix::Matrix;
use crate::{LinalgError, Result};

/// Eigendecomposition of a symmetric matrix: `a = V · diag(λ) · Vᵀ`.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues sorted in descending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors as *columns*, matching `values` order.
    pub vectors: Matrix,
}

/// Maximum number of full Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 60;

/// Computes the eigendecomposition of a symmetric matrix by cyclic Jacobi
/// rotations. The input must be square and (numerically) symmetric; symmetry
/// is enforced by averaging `a` with its transpose.
pub fn sym_eigen(a: &Matrix) -> Result<SymEigen> {
    let (n, m) = a.shape();
    if n != m {
        return Err(LinalgError::InvalidArgument(format!(
            "sym_eigen requires a square matrix, got {n}x{m}"
        )));
    }
    if n == 0 {
        return Ok(SymEigen {
            values: vec![],
            vectors: Matrix::zeros(0, 0),
        });
    }
    // Symmetrize defensively (caller may have tiny asymmetry from summation).
    let mut w = Matrix::from_fn(n, n, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]));
    let mut v = Matrix::identity(n);

    let scale = w.max_abs().max(1.0);
    let tol = 1e-14 * scale;

    for _sweep in 0..MAX_SWEEPS {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                off = off.max(w[(p, q)].abs());
            }
        }
        if off <= tol {
            return Ok(finish(w, v));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = w[(p, q)];
                if apq.abs() <= tol {
                    continue;
                }
                let app = w[(p, p)];
                let aqq = w[(q, q)];
                // Classic Jacobi rotation angle.
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Update W = Jᵀ W J where J rotates coordinates (p, q).
                for k in 0..n {
                    let wkp = w[(k, p)];
                    let wkq = w[(k, q)];
                    w[(k, p)] = c * wkp - s * wkq;
                    w[(k, q)] = s * wkp + c * wkq;
                }
                for k in 0..n {
                    let wpk = w[(p, k)];
                    let wqk = w[(q, k)];
                    w[(p, k)] = c * wpk - s * wqk;
                    w[(q, k)] = s * wpk + c * wqk;
                }
                // Accumulate eigenvectors: V = V J.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    Err(LinalgError::NoConvergence("sym_eigen (Jacobi)"))
}

fn finish(w: Matrix, v: Matrix) -> SymEigen {
    let n = w.rows();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| w[(j, j)].partial_cmp(&w[(i, i)]).unwrap());
    let values: Vec<f64> = order.iter().map(|&i| w[(i, i)]).collect();
    let vectors = Matrix::from_fn(n, n, |i, j| v[(i, order[j])]);
    SymEigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlra_util::Rng;

    fn random_symmetric(n: usize, rng: &mut Rng) -> Matrix {
        let a = Matrix::gaussian(n, n, rng);
        Matrix::from_fn(n, n, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]))
    }

    #[test]
    fn diagonal_matrix_eigen() {
        let a = Matrix::from_rows(&[
            vec![3.0, 0.0, 0.0],
            vec![0.0, -1.0, 0.0],
            vec![0.0, 0.0, 7.0],
        ])
        .unwrap();
        let e = sym_eigen(&a).unwrap();
        assert_eq!(e.values, vec![7.0, 3.0, -1.0]);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let e = sym_eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_and_orthogonality() {
        let mut rng = Rng::new(21);
        for &n in &[1usize, 2, 5, 16, 33] {
            let a = random_symmetric(n, &mut rng);
            let e = sym_eigen(&a).unwrap();
            // V diag(λ) Vᵀ == A
            let mut lam = Matrix::zeros(n, n);
            for i in 0..n {
                lam[(i, i)] = e.values[i];
            }
            let recon = e
                .vectors
                .matmul(&lam)
                .unwrap()
                .matmul(&e.vectors.transpose())
                .unwrap();
            let err = recon.sub(&a).unwrap().frobenius_norm();
            assert!(err < 1e-9 * (n as f64), "n={n} err={err}");
            // VᵀV == I
            let g = e.vectors.gram();
            for i in 0..n {
                for j in 0..n {
                    let want = if i == j { 1.0 } else { 0.0 };
                    assert!((g[(i, j)] - want).abs() < 1e-10);
                }
            }
            // Sorted descending.
            assert!(e.values.windows(2).all(|w| w[0] >= w[1] - 1e-12));
        }
    }

    #[test]
    fn gram_matrix_eigenvalues_nonnegative() {
        let mut rng = Rng::new(22);
        let a = Matrix::gaussian(10, 6, &mut rng);
        let e = sym_eigen(&a.gram()).unwrap();
        assert!(e.values.iter().all(|&l| l > -1e-9));
        // Trace == ||A||_F^2
        let trace: f64 = e.values.iter().sum();
        assert!((trace - a.frobenius_norm_sq()).abs() < 1e-8);
    }

    #[test]
    fn rejects_nonsquare() {
        assert!(sym_eigen(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn zero_and_empty() {
        let e = sym_eigen(&Matrix::zeros(0, 0)).unwrap();
        assert!(e.values.is_empty());
        let e = sym_eigen(&Matrix::zeros(3, 3)).unwrap();
        assert_eq!(e.values, vec![0.0; 3]);
    }
}
