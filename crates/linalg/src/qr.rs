//! Householder QR factorization and column orthonormalization.

use crate::matrix::{dot, norm, Matrix};
use crate::{LinalgError, Result};

/// Thin QR factorization `A = Q·R` of an `m × n` matrix with `m ≥ n`:
/// `Q` is `m × n` with orthonormal columns and `R` is `n × n` upper
/// triangular.
pub fn householder_qr(a: &Matrix) -> Result<(Matrix, Matrix)> {
    let (m, n) = a.shape();
    if m < n {
        return Err(LinalgError::InvalidArgument(format!(
            "householder_qr requires rows >= cols, got {m}x{n}"
        )));
    }
    // Work on the transpose so columns are contiguous.
    let mut at = a.transpose(); // n x m: row j is column j of A
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(n); // Householder vectors
    let mut r = Matrix::zeros(n, n);

    for j in 0..n {
        // Apply previous reflectors were already applied in place; compute the
        // reflector for the trailing part of column j.
        let col = at.row(j).to_vec();
        let tail = &col[j..];
        let alpha = norm(tail);
        let mut v = tail.to_vec();
        if alpha > 0.0 {
            // Choose sign to avoid cancellation.
            let sign = if v[0] >= 0.0 { 1.0 } else { -1.0 };
            v[0] += sign * alpha;
            let vnorm = norm(&v);
            if vnorm > 0.0 {
                for x in &mut v {
                    *x /= vnorm;
                }
            }
            // Apply the reflector H = I - 2vvᵀ to the trailing columns j..n
            // (stored as rows of `at`), acting on coordinates j..m.
            for jj in j..n {
                let row = at.row_mut(jj);
                let tail = &mut row[j..];
                let c = 2.0 * dot(&v, tail);
                for (t, &vi) in tail.iter_mut().zip(&v) {
                    *t -= c * vi;
                }
            }
        }
        // Record R entries: after reflection, column j has zeros below j.
        for i in 0..=j {
            r[(i, j)] = at.row(j)[i];
        }
        vs.push(v);
    }

    // Form Q (m x n) by applying the reflectors in reverse to the first n
    // columns of the identity.
    let mut q = Matrix::zeros(m, n);
    for j in 0..n {
        // e_j, then H_0 H_1 ... H_{n-1} applied in reverse order.
        let mut e = vec![0.0; m];
        e[j] = 1.0;
        for k in (0..n).rev() {
            let v = &vs[k];
            if v.is_empty() {
                continue;
            }
            let tail = &mut e[k..];
            let c = 2.0 * dot(v, tail);
            for (t, &vi) in tail.iter_mut().zip(v) {
                *t -= c * vi;
            }
        }
        for i in 0..m {
            q[(i, j)] = e[i];
        }
    }
    Ok((q, r))
}

/// Orthonormalizes the columns of `a` via modified Gram–Schmidt with
/// re-orthogonalization, dropping (near-)dependent columns. Returns an
/// `m × r` matrix whose `r ≤ n` columns are an orthonormal basis of the
/// column space of `a`.
pub fn orthonormalize_columns(a: &Matrix) -> Matrix {
    let (m, n) = a.shape();
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(n);
    let drop_tol = 1e-10 * a.max_abs().max(1.0);
    for j in 0..n {
        let mut v = a.col(j);
        // Two rounds of MGS ("twice is enough").
        for _ in 0..2 {
            for b in &basis {
                let c = dot(b, &v);
                for (vi, &bi) in v.iter_mut().zip(b) {
                    *vi -= c * bi;
                }
            }
        }
        let nv = norm(&v);
        if nv > drop_tol {
            for x in &mut v {
                *x /= nv;
            }
            basis.push(v);
        }
    }
    let r = basis.len();
    let mut q = Matrix::zeros(m, r);
    for (j, b) in basis.iter().enumerate() {
        for i in 0..m {
            q[(i, j)] = b[i];
        }
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlra_util::Rng;

    fn assert_orthonormal_cols(q: &Matrix, tol: f64) {
        let g = q.gram();
        for i in 0..q.cols() {
            for j in 0..q.cols() {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (g[(i, j)] - want).abs() < tol,
                    "gram[{i},{j}] = {}",
                    g[(i, j)]
                );
            }
        }
    }

    #[test]
    fn qr_reconstructs() {
        let mut rng = Rng::new(11);
        for &(m, n) in &[(5usize, 3usize), (8, 8), (20, 4), (3, 1)] {
            let a = Matrix::gaussian(m, n, &mut rng);
            let (q, r) = householder_qr(&a).unwrap();
            assert_eq!(q.shape(), (m, n));
            assert_eq!(r.shape(), (n, n));
            let qr = q.matmul(&r).unwrap();
            let err = qr.sub(&a).unwrap().frobenius_norm();
            assert!(err < 1e-10, "reconstruction error {err} for {m}x{n}");
            assert_orthonormal_cols(&q, 1e-10);
        }
    }

    #[test]
    fn qr_r_is_upper_triangular() {
        let mut rng = Rng::new(12);
        let a = Matrix::gaussian(6, 4, &mut rng);
        let (_, r) = householder_qr(&a).unwrap();
        for i in 1..4 {
            for j in 0..i {
                assert!(r[(i, j)].abs() < 1e-12, "r[{i},{j}] = {}", r[(i, j)]);
            }
        }
    }

    #[test]
    fn qr_rejects_wide() {
        let a = Matrix::zeros(2, 3);
        assert!(householder_qr(&a).is_err());
    }

    #[test]
    fn qr_handles_rank_deficient() {
        // Two identical columns: QR still reconstructs.
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]).unwrap();
        let (q, r) = householder_qr(&a).unwrap();
        let err = q.matmul(&r).unwrap().sub(&a).unwrap().frobenius_norm();
        assert!(err < 1e-10);
    }

    #[test]
    fn orthonormalize_full_rank() {
        let mut rng = Rng::new(13);
        let a = Matrix::gaussian(10, 4, &mut rng);
        let q = orthonormalize_columns(&a);
        assert_eq!(q.cols(), 4);
        assert_orthonormal_cols(&q, 1e-10);
    }

    #[test]
    fn orthonormalize_drops_dependent_columns() {
        let mut rng = Rng::new(14);
        let a = Matrix::gaussian(10, 3, &mut rng);
        // Append a column that is a combination of the first two.
        let dep: Vec<f64> = (0..10).map(|i| a[(i, 0)] * 2.0 - a[(i, 1)]).collect();
        let mut wide = Matrix::zeros(10, 4);
        for i in 0..10 {
            for j in 0..3 {
                wide[(i, j)] = a[(i, j)];
            }
            wide[(i, 3)] = dep[i];
        }
        let q = orthonormalize_columns(&wide);
        assert_eq!(q.cols(), 3);
        assert_orthonormal_cols(&q, 1e-10);
    }

    #[test]
    fn orthonormalize_zero_matrix_gives_empty_basis() {
        let q = orthonormalize_columns(&Matrix::zeros(5, 3));
        assert_eq!(q.cols(), 0);
    }
}
