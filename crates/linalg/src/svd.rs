//! One-sided Jacobi (Hestenes) singular value decomposition.
//!
//! The protocols only ever need the top-k *right* singular vectors of a
//! small sampled matrix `B ∈ ℝʳˣᵈ` (Algorithm 1 line 8), while the
//! experiment harness needs a full SVD of the global matrix to measure the
//! true `‖A − [A]ₖ‖²_F`. One-sided Jacobi serves both: it is simple, robust
//! for the sizes involved, and delivers singular vectors to near machine
//! precision.

use crate::matrix::{dot, Matrix};
use crate::{LinalgError, Result};

/// A thin singular value decomposition `a = U · diag(σ) · Vᵀ`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors as columns (`m × r`, `r = min(m, n)`).
    pub u: Matrix,
    /// Singular values, descending, length `r`.
    pub s: Vec<f64>,
    /// Right singular vectors as *rows* (`r × n`), i.e. this is `Vᵀ`.
    pub vt: Matrix,
}

impl Svd {
    /// Rank up to tolerance `tol · σ₁` (relative).
    pub fn rank(&self, rel_tol: f64) -> usize {
        let s1 = self.s.first().copied().unwrap_or(0.0);
        if s1 == 0.0 {
            return 0;
        }
        self.s.iter().take_while(|&&x| x > rel_tol * s1).count()
    }

    /// The top-`k` right singular vectors as columns of a `n × k` matrix
    /// (the `V` of Algorithm 1 line 8).
    pub fn top_right_vectors(&self, k: usize) -> Matrix {
        let k = k.min(self.s.len());
        let n = self.vt.cols();
        Matrix::from_fn(n, k, |i, j| self.vt[(j, i)])
    }

    /// The top-`k` right singular space as a factored projector
    /// `P = VₖVₖᵀ` (Algorithm 1 line 8, without materializing `d × d`).
    pub fn top_right_projector(&self, k: usize) -> crate::projector::Projector {
        crate::projector::Projector::from_basis(self.top_right_vectors(k))
    }

    /// Reconstructs `U · diag(σ) · Vᵀ` (for testing).
    pub fn reconstruct(&self) -> Matrix {
        let r = self.s.len();
        let mut us = self.u.clone();
        for j in 0..r {
            for i in 0..us.rows() {
                us[(i, j)] *= self.s[j];
            }
        }
        us.matmul(&self.vt).expect("shape by construction")
    }

    /// Sum of squared singular values below index `k`:
    /// `‖A − [A]ₖ‖²_F = Σ_{j>k} σ_j²` (Eckart–Young).
    pub fn tail_energy(&self, k: usize) -> f64 {
        self.s.iter().skip(k).map(|x| x * x).sum()
    }
}

/// Maximum Jacobi sweeps; each sweep touches all column pairs once.
const MAX_SWEEPS: usize = 60;

/// Computes the thin SVD of an arbitrary matrix by one-sided Jacobi.
///
/// For `m < n` the decomposition is computed on the transpose and the factors
/// swapped, so the cost is always `O(min(m,n)² · max(m,n))` per sweep.
pub fn svd(a: &Matrix) -> Result<Svd> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Ok(Svd {
            u: Matrix::zeros(m, 0),
            s: vec![],
            vt: Matrix::zeros(0, n),
        });
    }
    if m < n {
        let t = svd(&a.transpose())?;
        return Ok(Svd {
            u: t.vt.transpose(),
            s: t.s,
            vt: t.u.transpose(),
        });
    }
    // m >= n. Work on W = A with columns stored as rows (transpose) so each
    // column is contiguous; accumulate V (n x n) the same way.
    let mut wt = a.transpose(); // n x m, row j = column j of W
    let mut vt_acc = Matrix::identity(n); // row j = column j of V

    let total = a.frobenius_norm_sq();
    if total == 0.0 {
        // Zero matrix: σ = 0, U/V arbitrary orthonormal (identity blocks).
        let u = Matrix::from_fn(m, n, |i, j| if i == j { 1.0 } else { 0.0 });
        return Ok(Svd {
            u,
            s: vec![0.0; n],
            vt: Matrix::identity(n),
        });
    }
    let tol = 1e-15 * total;

    let mut converged = false;
    for _sweep in 0..MAX_SWEEPS {
        let mut rotated = false;
        for p in 0..n {
            for q in (p + 1)..n {
                let (alpha, beta, gamma) = {
                    let cp = wt.row(p);
                    let cq = wt.row(q);
                    (dot(cp, cp), dot(cq, cq), dot(cp, cq))
                };
                if gamma.abs() <= tol || gamma.abs() <= 1e-15 * (alpha * beta).sqrt() {
                    continue;
                }
                rotated = true;
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                // Rotate columns p and q of W (rows of wt) and of V.
                rotate_rows(&mut wt, p, q, c, s);
                rotate_rows(&mut vt_acc, p, q, c, s);
            }
        }
        if !rotated {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(LinalgError::NoConvergence("svd (one-sided Jacobi)"));
    }

    // Column norms are singular values.
    let mut sigma: Vec<(f64, usize)> = (0..n)
        .map(|j| (dot(wt.row(j), wt.row(j)).sqrt(), j))
        .collect();
    sigma.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());

    let mut u = Matrix::zeros(m, n);
    let mut vt = Matrix::zeros(n, n);
    let mut s = Vec::with_capacity(n);
    for (out_j, &(sv, src_j)) in sigma.iter().enumerate() {
        s.push(sv);
        let wcol = wt.row(src_j);
        if sv > 0.0 {
            for i in 0..m {
                u[(i, out_j)] = wcol[i] / sv;
            }
        }
        // If sv == 0 the U column stays zero; harmless for our uses
        // (reconstruction multiplies it by σ = 0).
        let vcol = vt_acc.row(src_j);
        for i in 0..n {
            vt[(out_j, i)] = vcol[i];
        }
    }
    Ok(Svd { u, s, vt })
}

#[inline]
fn rotate_rows(m: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    debug_assert!(p < q, "rotate_rows requires p < q");
    let cols = m.cols();
    let (pi, qi) = (p * cols, q * cols);
    let data = m.as_mut_slice();
    // Split-borrow the two rows (p < q so pi < qi).
    let (a, b) = data.split_at_mut(qi);
    let rp = &mut a[pi..pi + cols];
    let rq = &mut b[..cols];
    for (xp, xq) in rp.iter_mut().zip(rq.iter_mut()) {
        let a = *xp;
        let b = *xq;
        *xp = c * a - s * b;
        *xq = s * a + c * b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigen::sym_eigen;
    use dlra_util::Rng;

    fn assert_svd_valid(a: &Matrix, d: &Svd, tol: f64) {
        let (m, n) = a.shape();
        let r = m.min(n);
        assert_eq!(d.s.len(), r);
        assert_eq!(d.u.shape(), (m, r));
        assert_eq!(d.vt.shape(), (r, n));
        // Reconstruction.
        let err = d.reconstruct().sub(a).unwrap().frobenius_norm();
        assert!(err < tol, "reconstruction error {err}");
        // Descending nonnegative singular values.
        assert!(d.s.iter().all(|&x| x >= 0.0));
        assert!(d.s.windows(2).all(|w| w[0] >= w[1] - 1e-12));
        // Right-vector orthonormality: V Vᵀ == I_r.
        let vvt = d.vt.matmul(&d.vt.transpose()).unwrap();
        for i in 0..r {
            for j in 0..r {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (vvt[(i, j)] - want).abs() < 1e-9,
                    "vvt[{i},{j}]={}",
                    vvt[(i, j)]
                );
            }
        }
    }

    #[test]
    fn svd_tall_wide_square() {
        let mut rng = Rng::new(31);
        for &(m, n) in &[(6usize, 4usize), (4, 6), (5, 5), (1, 3), (3, 1), (1, 1)] {
            let a = Matrix::gaussian(m, n, &mut rng);
            let d = svd(&a).unwrap();
            assert_svd_valid(&a, &d, 1e-9);
        }
    }

    #[test]
    fn svd_left_vectors_orthonormal_full_rank() {
        let mut rng = Rng::new(32);
        let a = Matrix::gaussian(8, 5, &mut rng);
        let d = svd(&a).unwrap();
        let utu = d.u.gram();
        for i in 0..5 {
            for j in 0..5 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((utu[(i, j)] - want).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn singular_values_match_eigen_of_gram() {
        let mut rng = Rng::new(33);
        let a = Matrix::gaussian(10, 6, &mut rng);
        let d = svd(&a).unwrap();
        let e = sym_eigen(&a.gram()).unwrap();
        for (sv, ev) in d.s.iter().zip(&e.values) {
            assert!((sv * sv - ev).abs() < 1e-8, "σ²={} vs λ={}", sv * sv, ev);
        }
    }

    #[test]
    fn known_diagonal_singular_values() {
        let a = Matrix::from_rows(&[vec![0.0, 3.0], vec![-2.0, 0.0]]).unwrap();
        let d = svd(&a).unwrap();
        assert!((d.s[0] - 3.0).abs() < 1e-12);
        assert!((d.s[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_matrix() {
        let a = Matrix::zeros(4, 3);
        let d = svd(&a).unwrap();
        assert_eq!(d.s, vec![0.0; 3]);
        assert_svd_valid(&a, &d, 1e-12);
    }

    #[test]
    fn rank_deficient_matrix() {
        // Rank-1 outer product.
        let a = Matrix::from_fn(6, 4, |i, j| (i as f64 + 1.0) * (j as f64 - 1.5));
        let d = svd(&a).unwrap();
        assert_svd_valid(&a, &d, 1e-9);
        assert_eq!(d.rank(1e-9), 1);
        assert!(d.s[1] < 1e-9 * d.s[0]);
    }

    #[test]
    fn empty_matrix() {
        let d = svd(&Matrix::zeros(0, 3)).unwrap();
        assert!(d.s.is_empty());
        let d = svd(&Matrix::zeros(3, 0)).unwrap();
        assert!(d.s.is_empty());
    }

    #[test]
    fn tail_energy_matches_definition() {
        let mut rng = Rng::new(34);
        let a = Matrix::gaussian(7, 5, &mut rng);
        let d = svd(&a).unwrap();
        let total: f64 = d.s.iter().map(|x| x * x).sum();
        assert!((total - a.frobenius_norm_sq()).abs() < 1e-8);
        assert!((d.tail_energy(0) - total).abs() < 1e-8);
        assert_eq!(d.tail_energy(5), 0.0);
        let t2 = d.s[2] * d.s[2] + d.s[3] * d.s[3] + d.s[4] * d.s[4];
        assert!((d.tail_energy(2) - t2).abs() < 1e-10);
    }

    #[test]
    fn top_right_vectors_shape_and_orthonormality() {
        let mut rng = Rng::new(35);
        let a = Matrix::gaussian(9, 6, &mut rng);
        let d = svd(&a).unwrap();
        let v2 = d.top_right_vectors(2);
        assert_eq!(v2.shape(), (6, 2));
        let g = v2.gram();
        assert!((g[(0, 0)] - 1.0).abs() < 1e-10);
        assert!((g[(1, 1)] - 1.0).abs() < 1e-10);
        assert!(g[(0, 1)].abs() < 1e-10);
        // Asking for more than min(m,n) clamps.
        assert_eq!(d.top_right_vectors(100).cols(), 6);
    }

    #[test]
    fn moderately_large_matrix_accuracy() {
        let mut rng = Rng::new(36);
        let a = Matrix::gaussian(80, 40, &mut rng);
        let d = svd(&a).unwrap();
        assert_svd_valid(&a, &d, 1e-7);
    }
}
