//! The kernel thread-pool knob and the persistent panel-worker pool.
//!
//! The blocked kernels in [`crate::kernels`] parallelize over disjoint row
//! panels of their output. How many panels run concurrently is resolved in
//! this order:
//!
//! 1. a thread-scoped [`with_threads`] override (what runtime server
//!    workers use to pin kernels to one thread inside an already-parallel
//!    substrate),
//! 2. the last [`set_threads`] call,
//! 3. the `DLRA_THREADS` environment variable (read once),
//! 4. [`std::thread::available_parallelism`].
//!
//! Panels execute on a **persistent worker pool**, spawned lazily on the
//! first parallel call and reused for every call after it — replacing the
//! per-call `std::thread::scope` whose spawn/join latency dominated small
//! kernels. The submitting thread always runs the first panel itself and
//! blocks until the pool finishes the rest, so the pool adds at most
//! `threads() − 1` live kernel threads to the caller's own.
//!
//! Thread count never changes results: each worker owns a disjoint slice of
//! the output and every output element is accumulated in the same fixed
//! summation order regardless of how the panels are distributed, so kernels
//! are bit-identical across thread counts (proved by
//! `tests/kernel_equivalence.rs`).

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// 0 = unresolved; resolved values are always ≥ 1.
static THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread override; 0 = none. Takes precedence over the process
    /// setting so outer parallelism layers can pin inner kernels.
    static OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Sets the kernel thread count for the whole process (clamped to ≥ 1).
/// Overrides `DLRA_THREADS` and the hardware default.
pub fn set_threads(n: usize) {
    THREADS.store(n.max(1), Ordering::Relaxed);
}

/// The current kernel thread count: a scoped [`with_threads`] override if
/// one is active on this thread, otherwise the process-wide setting
/// (resolving the default on first use).
pub fn threads() -> usize {
    let scoped = OVERRIDE.with(Cell::get);
    if scoped != 0 {
        return scoped;
    }
    let t = THREADS.load(Ordering::Relaxed);
    if t != 0 {
        return t;
    }
    let resolved = std::env::var("DLRA_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    // Racing first calls resolve to the same value; a concurrent
    // `set_threads` may overwrite, which is the caller's intent anyway.
    THREADS.store(resolved, Ordering::Relaxed);
    resolved
}

/// Runs `f` with the kernel thread count pinned to `n` (clamped to ≥ 1) on
/// **this thread only**, restoring the previous override on exit — panic
/// included. This is how an outer parallelism layer (e.g. the threaded
/// runtime's server workers) stops kernel threading from composing
/// multiplicatively with its own: each worker wraps its jobs in
/// `with_threads(1, ..)` and every kernel inside runs inline.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = OVERRIDE.with(|c| c.replace(n.max(1)));
    let _restore = Restore(prev);
    f()
}

/// Live kernel execution contexts (pool workers running a panel plus
/// callers running their own panel inline) and the high-water mark since
/// the last [`reset_parallelism_watermark`].
static ACTIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn enter_kernel() {
    let now = ACTIVE.fetch_add(1, Ordering::AcqRel) + 1;
    PEAK.fetch_max(now, Ordering::AcqRel);
}

fn exit_kernel() {
    ACTIVE.fetch_sub(1, Ordering::AcqRel);
}

/// Resets the high-water mark of concurrently live kernel threads to the
/// currently live count. Diagnostics: tests use this to prove the kernel
/// and runtime parallelism layers do not oversubscribe multiplicatively.
pub fn reset_parallelism_watermark() {
    PEAK.store(ACTIVE.load(Ordering::Acquire), Ordering::Release);
}

/// The maximum number of kernel threads (pool workers plus inline callers)
/// that were live at once since the last [`reset_parallelism_watermark`].
pub fn parallelism_watermark() -> usize {
    PEAK.load(Ordering::Acquire)
}

/// Pool profiling: per-section wall time and per-worker busy time, recorded
/// only while [`set_pool_profiling`] is on. When off (the default) the cost
/// is one relaxed atomic load per kernel section / pool job — no clock
/// reads — and results are never affected either way.
static PROFILING: AtomicBool = AtomicBool::new(false);
static PARALLEL_SECTIONS: AtomicU64 = AtomicU64::new(0);
static INLINE_SECTIONS: AtomicU64 = AtomicU64::new(0);
static BUSY_NANOS: AtomicU64 = AtomicU64::new(0);
static WALL_NANOS: AtomicU64 = AtomicU64::new(0);

/// Turns kernel-pool profiling on or off (process-wide).
pub fn set_pool_profiling(on: bool) {
    PROFILING.store(on, Ordering::Relaxed);
}

/// Whether kernel-pool profiling is currently on.
pub fn pool_profiling() -> bool {
    PROFILING.load(Ordering::Relaxed)
}

/// Clears the accumulated [`pool_profile`] counters.
pub fn reset_pool_profile() {
    PARALLEL_SECTIONS.store(0, Ordering::Relaxed);
    INLINE_SECTIONS.store(0, Ordering::Relaxed);
    BUSY_NANOS.store(0, Ordering::Relaxed);
    WALL_NANOS.store(0, Ordering::Relaxed);
}

/// Accumulated profile of the panel dispatcher since the last
/// [`reset_pool_profile`] (all zero unless profiling was enabled).
pub fn pool_profile() -> PoolProfile {
    PoolProfile {
        parallel_sections: PARALLEL_SECTIONS.load(Ordering::Relaxed),
        inline_sections: INLINE_SECTIONS.load(Ordering::Relaxed),
        busy_nanos: BUSY_NANOS.load(Ordering::Relaxed),
        wall_nanos: WALL_NANOS.load(Ordering::Relaxed),
    }
}

/// Profile of the persistent panel pool: how many kernel sections ran
/// parallel vs inline, total section wall time, and total busy time across
/// the submitting thread and all pool workers. `busy / wall` is the
/// effective parallelism actually achieved (vs the configured `threads()`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolProfile {
    /// Kernel sections dispatched to the worker pool.
    pub parallel_sections: u64,
    /// Kernel sections run inline (single thread or below the work floor).
    pub inline_sections: u64,
    /// Nanoseconds of kernel execution summed over every participant.
    pub busy_nanos: u64,
    /// Nanoseconds of wall time summed over profiled sections.
    pub wall_nanos: u64,
}

impl PoolProfile {
    /// Average number of threads effectively busy during profiled kernel
    /// sections (0 when nothing was profiled).
    pub fn effective_parallelism(&self) -> f64 {
        if self.wall_nanos == 0 {
            0.0
        } else {
            self.busy_nanos as f64 / self.wall_nanos as f64
        }
    }
}

/// A completion latch: one parallel call waits for its dispatched panels.
struct Latch {
    // dlra-lock-order: kernel.latch
    remaining: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

impl Latch {
    fn new(n: usize) -> Self {
        Latch {
            remaining: Mutex::new(n),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        }
    }

    fn count_down(&self) {
        let mut left = self.remaining.lock().expect("latch poisoned");
        *left -= 1;
        if *left == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut left = self.remaining.lock().expect("latch poisoned");
        while *left > 0 {
            left = self.done.wait(left).expect("latch poisoned");
        }
    }
}

/// One dispatched panel, with the kernel closure and output slice erased
/// to raw pointers. The submitting call blocks on the latch until every
/// job completed, so the pointers never outlive their borrows; panels are
/// disjoint `split_at_mut` slices, so workers cannot alias.
struct PanelJob {
    // SAFETY: callers pass `call_kernel::<F>` together with a `kernel`
    // pointer derived from `&F`, so the vtable-style pair always agrees
    // on the erased type (upheld by the single call site in
    // `for_each_row_panel`).
    call: unsafe fn(*const (), usize, *mut f64, usize),
    kernel: *const (),
    first_row: usize,
    panel: *mut f64,
    panel_len: usize,
    latch: *const Latch,
}

// SAFETY: the raw pointers stand for `&(F: Sync)`, a `&mut [f64]` slice
// disjoint from every other job's, and a `&Latch` — all of which outlive
// the job because the submitter blocks on the latch before returning.
unsafe impl Send for PanelJob {}

/// Monomorphized trampoline: reconstitutes the kernel reference and panel
/// slice for one job.
///
/// # Safety
/// `kernel` must point to a live `F` and `panel/len` to a live, exclusive
/// `f64` slice (guaranteed by the submit-then-wait protocol above).
unsafe fn call_kernel<F: Fn(usize, &mut [f64]) + Sync>(
    kernel: *const (),
    first_row: usize,
    panel: *mut f64,
    panel_len: usize,
) {
    // SAFETY: the caller promises `kernel` points to a live `F` (see the
    // `# Safety` contract); `PanelJob` construction derives it from `&F`.
    let kernel = unsafe { &*(kernel as *const F) };
    // SAFETY: `panel/panel_len` describe a live `&mut [f64]` disjoint
    // from every other job's panel (`split_at_mut`), valid until the
    // submitter's latch releases — after this call returns.
    kernel(first_row, unsafe {
        std::slice::from_raw_parts_mut(panel, panel_len)
    });
}

struct Pool {
    sender: Sender<PanelJob>,
    // dlra-lock-order: kernel.inbox
    receiver: Arc<Mutex<Receiver<PanelJob>>>,
    spawned: usize,
}

static POOL: OnceLock<Mutex<Pool>> = OnceLock::new();

// dlra-lock-order: kernel.pool
fn pool() -> &'static Mutex<Pool> {
    POOL.get_or_init(|| {
        let (sender, receiver) = mpsc::channel();
        Mutex::new(Pool {
            sender,
            receiver: Arc::new(Mutex::new(receiver)),
            spawned: 0,
        })
    })
}

/// Grows the pool to at least `jobs.len()` workers and enqueues the jobs.
fn submit_to_pool(jobs: Vec<PanelJob>) {
    if jobs.is_empty() {
        return;
    }
    let mut pool = pool().lock().expect("kernel pool poisoned");
    while pool.spawned < jobs.len() {
        let work = Arc::clone(&pool.receiver);
        std::thread::Builder::new()
            .name(format!("dlra-kernel-{}", pool.spawned))
            .spawn(move || worker_loop(&work))
            .expect("spawn kernel pool worker");
        pool.spawned += 1;
    }
    for job in jobs {
        // The receiver lives in the static pool, so the channel never
        // closes.
        pool.sender.send(job).expect("kernel pool channel closed");
    }
}

fn worker_loop(work: &Mutex<Receiver<PanelJob>>) {
    loop {
        let job = {
            let inbox = work.lock().expect("kernel pool inbox poisoned");
            inbox.recv()
        };
        let Ok(job) = job else { return };
        enter_kernel();
        let job_start = pool_profiling().then(Instant::now);
        // Pool workers pin nested parallelism to 1: a kernel that somehow
        // re-enters the dispatcher runs inline instead of waiting on the
        // very pool it occupies.
        let result = catch_unwind(AssertUnwindSafe(|| {
            // SAFETY: see `PanelJob` — the submitter keeps every pointee
            // alive until the latch opens, which is after this call.
            with_threads(1, || unsafe {
                (job.call)(job.kernel, job.first_row, job.panel, job.panel_len)
            })
        }));
        if let Some(t0) = job_start {
            // Before `count_down`, so a section's busy time is fully
            // accumulated by the time its submitter stops waiting.
            BUSY_NANOS.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        exit_kernel();
        // SAFETY: the latch outlives the job (submit-then-wait protocol).
        let latch = unsafe { &*job.latch };
        if result.is_err() {
            latch.panicked.store(true, Ordering::Release);
        }
        latch.count_down();
    }
}

/// Below this many flops the dispatch latency dominates any speedup.
const PARALLEL_WORK_FLOOR: usize = 1 << 21;

/// Runs `kernel` over the rows of a contiguous row-major output buffer,
/// split into one contiguous row panel per worker with (near-)equal row
/// counts.
///
/// `kernel(first_row, panel)` must fill `panel` (rows `first_row ..
/// first_row + panel.len() / row_width`) without reading any other panel —
/// the disjoint `&mut` split makes that structurally impossible to violate.
///
/// `work` is a rough flop count for the whole call; cheap calls and
/// single-thread configurations run inline on the caller's stack, so tiny
/// matrices never pay dispatch latency.
pub(crate) fn for_each_row_panel<F>(out: &mut [f64], row_width: usize, work: usize, kernel: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    for_each_row_panel_by_weight(out, row_width, work, |_| 1, kernel)
}

/// [`for_each_row_panel`] with panel boundaries chosen so every worker gets
/// (approximately) the same total of `row_weight(row)` instead of the same
/// row count — e.g. the triangular gram kernel weights row `p` by `c − p`
/// so the first panels (long rows) are narrower than the last.
pub(crate) fn for_each_row_panel_by_weight<F, W>(
    out: &mut [f64],
    row_width: usize,
    work: usize,
    row_weight: W,
    kernel: F,
) where
    F: Fn(usize, &mut [f64]) + Sync,
    W: Fn(usize) -> usize,
{
    let rows = out.len().checked_div(row_width).unwrap_or(0);
    if rows == 0 {
        return;
    }
    let t = threads().min(rows);
    if t <= 1 || work < PARALLEL_WORK_FLOOR {
        let section_start = pool_profiling().then(Instant::now);
        enter_kernel();
        let result = catch_unwind(AssertUnwindSafe(|| kernel(0, out)));
        exit_kernel();
        if let Some(t0) = section_start {
            let nanos = t0.elapsed().as_nanos() as u64;
            INLINE_SECTIONS.fetch_add(1, Ordering::Relaxed);
            BUSY_NANOS.fetch_add(nanos, Ordering::Relaxed);
            WALL_NANOS.fetch_add(nanos, Ordering::Relaxed);
        }
        if let Err(payload) = result {
            resume_unwind(payload);
        }
        return;
    }
    let section_start = pool_profiling().then(Instant::now);
    // Cut the row range into `t` contiguous panels of (near-)equal total
    // weight: walk the rows accumulating weight and cut at each multiple
    // of `total / t`.
    let total: usize = (0..rows).map(&row_weight).sum();
    let target = total.div_ceil(t).max(1);
    let mut panels: Vec<(usize, &mut [f64])> = Vec::with_capacity(t);
    {
        let mut rest = out;
        let mut row0 = 0;
        let mut acc = 0usize;
        let mut row = 0usize;
        let mut panels_left = t;
        while row0 < rows {
            // Extend the panel until its weight reaches the target (always
            // taking at least one row); the last panel takes everything.
            if panels_left == 1 {
                row = rows;
            } else {
                while row < rows && (acc < target || row == row0) {
                    acc += row_weight(row);
                    row += 1;
                }
                acc = acc.saturating_sub(target);
            }
            panels_left -= 1;
            let panel_rows = row - row0;
            let (panel, tail) = rest.split_at_mut(panel_rows * row_width);
            rest = tail;
            panels.push((row0, panel));
            row0 = row;
        }
    }

    let latch = Latch::new(panels.len() - 1);
    let mut panels = panels.into_iter();
    let (first0, panel0) = panels.next().expect("at least one panel");
    let jobs: Vec<PanelJob> = panels
        .map(|(first_row, panel)| PanelJob {
            call: call_kernel::<F>,
            kernel: &kernel as *const F as *const (),
            first_row,
            panel: panel.as_mut_ptr(),
            panel_len: panel.len(),
            latch: &latch,
        })
        .collect();
    submit_to_pool(jobs);

    // Run our own panel while the pool chews on the rest.
    enter_kernel();
    let own_start = section_start.map(|_| Instant::now());
    let mine = catch_unwind(AssertUnwindSafe(|| kernel(first0, panel0)));
    if let Some(t0) = own_start {
        BUSY_NANOS.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
    exit_kernel();

    // Wait before propagating anything: the jobs borrow `kernel`, the
    // latch, and slices of `out`, all of which must stay alive until every
    // worker is done with them.
    latch.wait();
    if let Some(t0) = section_start {
        PARALLEL_SECTIONS.fetch_add(1, Ordering::Relaxed);
        WALL_NANOS.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
    if let Err(payload) = mine {
        resume_unwind(payload);
    }
    if latch.panicked.load(Ordering::Acquire) {
        panic!("a kernel pool worker panicked");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test for all process-global thread-knob behavior: `THREADS` is
    /// shared across the test binary, so exercising it from several
    /// parallel `#[test]`s would race the asserted values.
    #[test]
    fn thread_knob_and_panel_coverage() {
        // Clamp and getter.
        set_threads(0);
        assert!(threads() >= 1);
        set_threads(3);
        assert_eq!(threads(), 3);

        // Scoped override wins over the process setting and restores on
        // exit — panic included.
        assert_eq!(with_threads(1, threads), 1);
        assert_eq!(with_threads(7, || with_threads(2, threads)), 2);
        assert_eq!(threads(), 3);
        let unwound = catch_unwind(AssertUnwindSafe(|| {
            with_threads(1, || panic!("boom"));
        }));
        assert!(unwound.is_err());
        assert_eq!(threads(), 3, "override leaked past a panic");

        // Even split covers every row exactly once (forced parallel path
        // via a huge work estimate) — and runs on the persistent pool.
        // (The `parallelism_watermark` bounds live in the single-test
        // `tests/thread_composition.rs` binary — the counters are
        // process-global and concurrent unit tests would race them.)
        let rows = 10;
        let width = 4;
        let mut out = vec![0.0f64; rows * width];
        for_each_row_panel(&mut out, width, usize::MAX, |first_row, panel| {
            for (r, row) in panel.chunks_exact_mut(width).enumerate() {
                for x in row.iter_mut() {
                    *x += (first_row + r) as f64;
                }
            }
        });
        for (i, row) in out.chunks_exact(width).enumerate() {
            assert!(row.iter().all(|&x| x == i as f64), "row {i}: {row:?}");
        }

        // Under a scoped pin the same call covers every row, inline.
        let mut out = vec![0.0f64; rows * width];
        with_threads(1, || {
            for_each_row_panel(&mut out, width, usize::MAX, |first_row, panel| {
                for (r, row) in panel.chunks_exact_mut(width).enumerate() {
                    for x in row.iter_mut() {
                        *x += (first_row + r) as f64;
                    }
                }
            });
        });
        for (i, row) in out.chunks_exact(width).enumerate() {
            assert!(row.iter().all(|&x| x == i as f64), "row {i}: {row:?}");
        }

        // Weighted split covers every row exactly once too, with panels
        // balanced by triangle-style weights.
        let rows = 23;
        let mut out = vec![0.0f64; rows * width];
        for_each_row_panel_by_weight(
            &mut out,
            width,
            usize::MAX,
            |p| rows - p,
            |first_row, panel| {
                for (r, row) in panel.chunks_exact_mut(width).enumerate() {
                    for x in row.iter_mut() {
                        *x += (first_row + r) as f64;
                    }
                }
            },
        );
        for (i, row) in out.chunks_exact(width).enumerate() {
            assert!(row.iter().all(|&x| x == i as f64), "row {i}: {row:?}");
        }

        // A panicking kernel on the parallel path neither deadlocks nor
        // poisons the pool for later calls.
        let mut out = vec![0.0f64; 8 * width];
        let unwound = catch_unwind(AssertUnwindSafe(|| {
            for_each_row_panel(&mut out, width, usize::MAX, |_first, _panel| {
                panic!("kernel panic");
            });
        }));
        assert!(unwound.is_err());
        let mut out = vec![1.0f64; 8 * width];
        for_each_row_panel(&mut out, width, usize::MAX, |_first, panel| {
            for x in panel.iter_mut() {
                *x += 1.0;
            }
        });
        assert!(out.iter().all(|&x| x == 2.0), "pool unusable after panic");

        set_threads(1);
    }

    #[test]
    fn pool_profile_accumulates_when_enabled() {
        // The counters are process-global; assert only monotone deltas so
        // concurrently running kernel tests cannot break this one.
        set_pool_profiling(false);
        let before = pool_profile();
        let width = 4;
        let mut out = vec![0.0f64; 4 * width];
        with_threads(1, || {
            for_each_row_panel(&mut out, width, 0, |_, panel| {
                for x in panel.iter_mut() {
                    *x += 1.0;
                }
            });
        });
        // Disabled: the inline section above must not have been counted…
        // (another test may have enabled profiling concurrently, so only
        // check the enabled path strictly).
        set_pool_profiling(true);
        assert!(pool_profiling());
        with_threads(2, || {
            for_each_row_panel(&mut out, width, usize::MAX, |_, panel| {
                for x in panel.iter_mut() {
                    *x += 1.0;
                }
            });
        });
        set_pool_profiling(false);
        let after = pool_profile();
        assert!(after.parallel_sections > before.parallel_sections);
        assert!(after.wall_nanos > before.wall_nanos);
        assert!(after.busy_nanos > before.busy_nanos);
        assert!(after.effective_parallelism() > 0.0);
        assert_eq!(PoolProfile::default().effective_parallelism(), 0.0);
    }

    #[test]
    fn empty_output_is_a_noop() {
        let mut out: Vec<f64> = vec![];
        for_each_row_panel(&mut out, 0, 0, |_, _| panic!("kernel must not run"));
        for_each_row_panel(&mut out, 8, 0, |_, _| panic!("kernel must not run"));
    }
}
