//! The kernel thread-pool knob.
//!
//! The blocked kernels in [`crate::kernels`] parallelize over disjoint row
//! panels of their output with `std::thread::scope`. How many panels run
//! concurrently is a process-wide setting resolved in this order:
//!
//! 1. the last [`set_threads`] call,
//! 2. the `DLRA_THREADS` environment variable (read once),
//! 3. [`std::thread::available_parallelism`].
//!
//! Thread count never changes results: each worker owns a disjoint slice of
//! the output and every output element is accumulated in the same fixed
//! summation order regardless of how the panels are distributed, so kernels
//! are bit-identical across thread counts (proved by
//! `tests/kernel_equivalence.rs`).

use std::sync::atomic::{AtomicUsize, Ordering};

/// 0 = unresolved; resolved values are always ≥ 1.
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the kernel thread count for the whole process (clamped to ≥ 1).
/// Overrides `DLRA_THREADS` and the hardware default.
pub fn set_threads(n: usize) {
    THREADS.store(n.max(1), Ordering::Relaxed);
}

/// The current kernel thread count (resolving the default on first use).
pub fn threads() -> usize {
    let t = THREADS.load(Ordering::Relaxed);
    if t != 0 {
        return t;
    }
    let resolved = std::env::var("DLRA_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    // Racing first calls resolve to the same value; a concurrent
    // `set_threads` may overwrite, which is the caller's intent anyway.
    THREADS.store(resolved, Ordering::Relaxed);
    resolved
}

/// Below this many flops the spawn latency dominates any speedup.
const PARALLEL_WORK_FLOOR: usize = 1 << 21;

/// Runs `kernel` over the rows of a contiguous row-major output buffer,
/// split into one contiguous row panel per worker with (near-)equal row
/// counts.
///
/// `kernel(first_row, panel)` must fill `panel` (rows `first_row ..
/// first_row + panel.len() / row_width`) without reading any other panel —
/// the disjoint `&mut` split makes that structurally impossible to violate.
///
/// `work` is a rough flop count for the whole call; cheap calls and
/// single-thread configurations run inline on the caller's stack, so tiny
/// matrices never pay thread-spawn latency.
pub(crate) fn for_each_row_panel<F>(out: &mut [f64], row_width: usize, work: usize, kernel: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    for_each_row_panel_by_weight(out, row_width, work, |_| 1, kernel)
}

/// [`for_each_row_panel`] with panel boundaries chosen so every worker gets
/// (approximately) the same total of `row_weight(row)` instead of the same
/// row count — e.g. the triangular gram kernel weights row `p` by `c − p`
/// so the first panels (long rows) are narrower than the last.
pub(crate) fn for_each_row_panel_by_weight<F, W>(
    out: &mut [f64],
    row_width: usize,
    work: usize,
    row_weight: W,
    kernel: F,
) where
    F: Fn(usize, &mut [f64]) + Sync,
    W: Fn(usize) -> usize,
{
    let rows = out.len().checked_div(row_width).unwrap_or(0);
    if rows == 0 {
        return;
    }
    let t = threads().min(rows);
    if t <= 1 || work < PARALLEL_WORK_FLOOR {
        kernel(0, out);
        return;
    }
    // Cut the row range into `t` contiguous panels of (near-)equal total
    // weight: walk the rows accumulating weight and cut at each multiple
    // of `total / t`.
    let total: usize = (0..rows).map(&row_weight).sum();
    let target = total.div_ceil(t).max(1);
    std::thread::scope(|scope| {
        let mut rest = out;
        let mut row0 = 0;
        let mut acc = 0usize;
        let mut row = 0usize;
        let mut panels_left = t;
        while row0 < rows {
            // Extend the panel until its weight reaches the target (always
            // taking at least one row); the last panel takes everything.
            if panels_left == 1 {
                row = rows;
            } else {
                while row < rows && (acc < target || row == row0) {
                    acc += row_weight(row);
                    row += 1;
                }
                acc = acc.saturating_sub(target);
            }
            panels_left -= 1;
            let panel_rows = row - row0;
            let (panel, tail) = rest.split_at_mut(panel_rows * row_width);
            rest = tail;
            let kernel = &kernel;
            let first = row0;
            scope.spawn(move || kernel(first, panel));
            row0 = row;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test for all process-global thread-knob behavior: `THREADS` is
    /// shared across the test binary, so exercising it from several
    /// parallel `#[test]`s would race the asserted values.
    #[test]
    fn thread_knob_and_panel_coverage() {
        // Clamp and getter.
        set_threads(0);
        assert!(threads() >= 1);
        set_threads(3);
        assert_eq!(threads(), 3);

        // Even split covers every row exactly once (forced parallel path
        // via a huge work estimate).
        let rows = 10;
        let width = 4;
        let mut out = vec![0.0f64; rows * width];
        for_each_row_panel(&mut out, width, usize::MAX, |first_row, panel| {
            for (r, row) in panel.chunks_exact_mut(width).enumerate() {
                for x in row.iter_mut() {
                    *x += (first_row + r) as f64;
                }
            }
        });
        for (i, row) in out.chunks_exact(width).enumerate() {
            assert!(row.iter().all(|&x| x == i as f64), "row {i}: {row:?}");
        }

        // Weighted split covers every row exactly once too, with panels
        // balanced by triangle-style weights.
        let rows = 23;
        let mut out = vec![0.0f64; rows * width];
        for_each_row_panel_by_weight(
            &mut out,
            width,
            usize::MAX,
            |p| rows - p,
            |first_row, panel| {
                for (r, row) in panel.chunks_exact_mut(width).enumerate() {
                    for x in row.iter_mut() {
                        *x += (first_row + r) as f64;
                    }
                }
            },
        );
        for (i, row) in out.chunks_exact(width).enumerate() {
            assert!(row.iter().all(|&x| x == i as f64), "row {i}: {row:?}");
        }
        set_threads(1);
    }

    #[test]
    fn empty_output_is_a_noop() {
        let mut out: Vec<f64> = vec![];
        for_each_row_panel(&mut out, 0, 0, |_, _| panic!("kernel must not run"));
        for_each_row_panel(&mut out, 8, 0, |_, _| panic!("kernel must not run"));
    }
}
