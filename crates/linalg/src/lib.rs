//! Dense linear algebra kernels for the `dlra` workspace.
//!
//! Everything is implemented from scratch on a row-major [`Matrix`] of `f64`:
//!
//! * [`matrix`] — the matrix type and elementwise / multiplicative kernels;
//! * [`qr`] — Householder thin QR and orthonormalization;
//! * [`eigen`] — cyclic Jacobi eigensolver for symmetric matrices;
//! * [`svd`] — one-sided Jacobi (Hestenes) singular value decomposition;
//! * [`lowrank`] — best rank-k approximations, projection matrices, and the
//!   Frobenius-error helpers used by the paper's definitions of additive and
//!   relative error.
//!
//! The sizes exercised by the paper reproduction (n ≤ a few thousand,
//! d ≤ 512) are small enough that simple cache-friendly loops are sufficient;
//! the SVD is accurate to ~1e-12 on these sizes and is property-tested
//! against reconstruction and orthogonality invariants.

pub mod eigen;
pub mod lowrank;
pub mod matrix;
pub mod qr;
pub mod randomized;
pub mod svd;

pub use eigen::{sym_eigen, SymEigen};
pub use lowrank::{
    best_rank_k, best_rank_k_error_sq, projection_from_basis, residual_sq, RankKApprox,
};
pub use matrix::Matrix;
pub use qr::{householder_qr, orthonormalize_columns};
pub use randomized::{randomized_svd, RandomizedSvdConfig};
pub use svd::{svd, Svd};

/// Errors surfaced by the linear-algebra kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible (message names the operation).
    ShapeMismatch(String),
    /// An iterative kernel failed to converge within its sweep budget.
    NoConvergence(&'static str),
    /// A rank / dimension argument is out of range.
    InvalidArgument(String),
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::ShapeMismatch(m) => write!(f, "shape mismatch: {m}"),
            LinalgError::NoConvergence(op) => write!(f, "{op} failed to converge"),
            LinalgError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Workspace-wide `Result` alias for linear algebra.
pub type Result<T> = std::result::Result<T, LinalgError>;
