//! Dense linear algebra kernels for the `dlra` workspace.
//!
//! Everything is implemented from scratch on a row-major [`Matrix`] of `f64`:
//!
//! * [`matrix`] — the matrix type and elementwise / multiplicative kernels;
//! * [`kernels`] — the cache-blocked, register-tiled, panel-parallel
//!   implementations behind `matmul` / `transpose_matmul` / `gram` /
//!   `transpose`, plus the retained naive [`kernels::reference`] baselines;
//! * [`threads`] — the kernel thread-count knob ([`set_threads`] /
//!   `DLRA_THREADS`, default = available parallelism), the scoped
//!   [`with_threads`] override outer parallelism layers use to pin
//!   kernels, and the persistent panel-worker pool the kernels run on;
//! * [`projector`] — factored orthogonal projectors `P = V·Vᵀ` applied as
//!   `(A·V)·Vᵀ`, never materializing the `d × d` matrix;
//! * [`qr`] — Householder thin QR and orthonormalization;
//! * [`eigen`] — cyclic Jacobi eigensolver for symmetric matrices;
//! * [`svd`] — one-sided Jacobi (Hestenes) singular value decomposition;
//! * [`lowrank`] — best rank-k approximations, projection matrices, and the
//!   Frobenius-error helpers used by the paper's definitions of additive and
//!   relative error.
//!
//! The multiplicative kernels keep a **fixed summation order** (ascending
//! contraction index per output element), so every result is bit-identical
//! across block sizes and thread counts — the substrate-equivalence
//! guarantees of the protocol layers survive parallel kernels unchanged.
//! The SVD is accurate to ~1e-12 on the reproduced sizes and is
//! property-tested against reconstruction and orthogonality invariants.

#![deny(unsafe_op_in_unsafe_fn)]
pub mod eigen;
pub mod kernels;
pub mod lowrank;
pub mod matrix;
pub mod projector;
pub mod qr;
pub mod randomized;
pub mod svd;
pub mod threads;

pub use eigen::{sym_eigen, SymEigen};
pub use lowrank::{
    best_rank_k, best_rank_k_error_sq, projection_from_basis, residual_sq, RankKApprox,
};
pub use matrix::Matrix;
pub use projector::Projector;
pub use qr::{householder_qr, orthonormalize_columns};
pub use randomized::{randomized_svd, RandomizedSvdConfig};
pub use svd::{svd, Svd};
pub use threads::{
    parallelism_watermark, pool_profile, pool_profiling, reset_parallelism_watermark,
    reset_pool_profile, set_pool_profiling, set_threads, threads, with_threads, PoolProfile,
};

/// Errors surfaced by the linear-algebra kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible (message names the operation).
    ShapeMismatch(String),
    /// An iterative kernel failed to converge within its sweep budget.
    NoConvergence(&'static str),
    /// A rank / dimension argument is out of range.
    InvalidArgument(String),
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::ShapeMismatch(m) => write!(f, "shape mismatch: {m}"),
            LinalgError::NoConvergence(op) => write!(f, "{op} failed to converge"),
            LinalgError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Workspace-wide `Result` alias for linear algebra.
pub type Result<T> = std::result::Result<T, LinalgError>;
