//! Factored orthogonal projectors `P = V·Vᵀ`, stored as their basis `V`.
//!
//! The protocols' output is always a rank-≤k row-space projection, and the
//! basis `V ∈ ℝᵈˣᶜ` (orthonormal columns) is both what the coordinator
//! computes (Algorithm 1 line 8) and what the adaptive extension broadcasts
//! over the wire. Materializing `P = V·Vᵀ ∈ ℝᵈˣᵈ` turns every O(ndc)
//! application into an O(nd²) one and every O(dc) ship into O(d²) of
//! memory — so the workspace keeps projectors factored and applies them as
//! `(A·V)·Vᵀ`, falling back to [`Projector::to_dense`] only where a dense
//! matrix is genuinely required (e.g. adversarial sweeps over arbitrary
//! dense projections in `theory`).

use crate::matrix::Matrix;
use crate::Result;

/// A rank-≤c orthogonal projector `P = V·Vᵀ`, stored factored.
///
/// # Invariant
///
/// `V`'s columns are orthonormal (`VᵀV = I`). Constructors in this
/// workspace obtain `V` from an SVD or a QR orthonormalization, which
/// guarantees it; [`Projector::basis_orthonormality_error`] measures it for
/// tests. The energy identities used by [`Projector::residual_sq`] rely on
/// this invariant.
///
/// ```
/// use dlra_linalg::{orthonormalize_columns, Matrix, Projector};
/// use dlra_util::Rng;
/// let mut rng = Rng::new(7);
/// let p = Projector::from_basis(orthonormalize_columns(&Matrix::gaussian(6, 2, &mut rng)));
/// let a = Matrix::gaussian(10, 6, &mut rng);
/// let ap = p.apply(&a).unwrap();            // (A·V)·Vᵀ, never d×d
/// let res = p.residual_sq(&a).unwrap();     // ‖A‖² − ‖AV‖²
/// assert!((res - a.sub(&ap).unwrap().frobenius_norm_sq()).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Projector {
    v: Matrix,
}

impl Projector {
    /// Wraps a `d × c` basis with orthonormal columns.
    pub fn from_basis(v: Matrix) -> Self {
        Projector { v }
    }

    /// The rank-0 projector on `ℝᵈ` (`P = 0`).
    pub fn zero(d: usize) -> Self {
        Projector {
            v: Matrix::zeros(d, 0),
        }
    }

    /// The stored basis `V` (`d × c`). This is exactly what the adaptive
    /// protocol broadcasts, so the wire format of a projector is its basis.
    pub fn basis(&self) -> &Matrix {
        &self.v
    }

    /// Ambient dimension `d`.
    pub fn dim(&self) -> usize {
        self.v.rows()
    }

    /// Rank bound `c` (the number of basis columns).
    pub fn rank(&self) -> usize {
        self.v.cols()
    }

    /// `A·P = (A·V)·Vᵀ` without materializing `P` — O(ndc) instead of
    /// O(nd²).
    pub fn apply(&self, a: &Matrix) -> Result<Matrix> {
        let coeff = a.matmul(&self.v)?;
        coeff.matmul(&self.v.transpose())
    }

    /// `A − A·P`, the residual of `a` against this projector.
    pub fn residual(&self, a: &Matrix) -> Result<Matrix> {
        a.sub(&self.apply(a)?)
    }

    /// `‖A·P‖²_F = ‖A·V‖²_F` (orthonormal `V`): the captured energy,
    /// computed from the n×c coefficient matrix.
    pub fn captured_sq(&self, a: &Matrix) -> Result<f64> {
        Ok(a.matmul(&self.v)?.frobenius_norm_sq())
    }

    /// `‖A − A·P‖²_F` via the Pythagorean identity
    /// `‖A‖²_F − ‖A·V‖²_F` (§II), clamped at zero against floating-point
    /// drift. O(ndc) — the factored replacement for the dense
    /// [`crate::lowrank::residual_sq`].
    pub fn residual_sq(&self, a: &Matrix) -> Result<f64> {
        Ok((a.frobenius_norm_sq() - self.captured_sq(a)?).max(0.0))
    }

    /// `x − x·P` for a single row vector `x` (length `d`): coefficients
    /// `xᵀV` first, then the correction — O(dc).
    pub fn residual_row(&self, x: &[f64]) -> Vec<f64> {
        let c = self.v.cols();
        let mut coeff = vec![0.0f64; c];
        for (i, &xi) in x.iter().enumerate() {
            let vrow = self.v.row(i);
            for (cj, &vij) in coeff.iter_mut().zip(vrow) {
                *cj += xi * vij;
            }
        }
        let mut out = x.to_vec();
        for (i, o) in out.iter_mut().enumerate() {
            let vrow = self.v.row(i);
            for (&cj, &vij) in coeff.iter().zip(vrow) {
                *o -= vij * cj;
            }
        }
        out
    }

    /// Materializes the dense `d × d` matrix `P = V·Vᵀ`. Evaluation /
    /// interop only — protocol hot paths never call this.
    pub fn to_dense(&self) -> Matrix {
        self.v
            .matmul(&self.v.transpose())
            .expect("shape by construction")
    }

    /// `max |VᵀV − I|`: how far the basis is from orthonormal (tests).
    pub fn basis_orthonormality_error(&self) -> f64 {
        let g = self.v.gram();
        let mut worst = 0.0f64;
        for i in 0..g.rows() {
            for j in 0..g.cols() {
                let target = if i == j { 1.0 } else { 0.0 };
                worst = worst.max((g[(i, j)] - target).abs());
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qr::orthonormalize_columns;
    use dlra_util::Rng;

    fn random_projector(d: usize, c: usize, seed: u64) -> Projector {
        let mut rng = Rng::new(seed);
        Projector::from_basis(orthonormalize_columns(&Matrix::gaussian(d, c, &mut rng)))
    }

    #[test]
    fn to_dense_matches_explicit_vvt() {
        let p = random_projector(8, 3, 1);
        let dense = p.to_dense();
        let explicit = p.basis().matmul(&p.basis().transpose()).unwrap();
        assert!(dense.sub(&explicit).unwrap().frobenius_norm() < 1e-12);
    }

    #[test]
    fn apply_matches_dense_product() {
        let mut rng = Rng::new(2);
        let p = random_projector(10, 4, 3);
        let a = Matrix::gaussian(15, 10, &mut rng);
        let factored = p.apply(&a).unwrap();
        let dense = a.matmul(&p.to_dense()).unwrap();
        assert!(factored.sub(&dense).unwrap().frobenius_norm() < 1e-10);
    }

    #[test]
    fn residual_sq_matches_dense_path() {
        let mut rng = Rng::new(4);
        let p = random_projector(9, 2, 5);
        let a = Matrix::gaussian(20, 9, &mut rng);
        let factored = p.residual_sq(&a).unwrap();
        let dense = crate::lowrank::residual_sq(&a, &p.to_dense()).unwrap();
        assert!((factored - dense).abs() < 1e-8, "{factored} vs {dense}");
        let explicit = p.residual(&a).unwrap().frobenius_norm_sq();
        assert!((factored - explicit).abs() < 1e-8);
    }

    #[test]
    fn captured_plus_residual_is_total() {
        let mut rng = Rng::new(6);
        let p = random_projector(12, 5, 7);
        let a = Matrix::gaussian(25, 12, &mut rng);
        let cap = p.captured_sq(&a).unwrap();
        let res = p.residual_sq(&a).unwrap();
        assert!((cap + res - a.frobenius_norm_sq()).abs() < 1e-8);
    }

    #[test]
    fn residual_row_is_orthogonal_to_basis() {
        let mut rng = Rng::new(8);
        let p = random_projector(8, 3, 9);
        let x: Vec<f64> = (0..8).map(|_| rng.gaussian()).collect();
        let r = p.residual_row(&x);
        for j in 0..3 {
            let dot: f64 = r
                .iter()
                .enumerate()
                .map(|(i, &ri)| ri * p.basis()[(i, j)])
                .sum();
            assert!(dot.abs() < 1e-10, "column {j}: {dot}");
        }
    }

    #[test]
    fn zero_projector_captures_nothing() {
        let mut rng = Rng::new(10);
        let a = Matrix::gaussian(6, 4, &mut rng);
        let p = Projector::zero(4);
        assert_eq!(p.rank(), 0);
        assert_eq!(p.dim(), 4);
        assert_eq!(p.captured_sq(&a).unwrap(), 0.0);
        assert_eq!(p.residual_sq(&a).unwrap(), a.frobenius_norm_sq());
        assert_eq!(p.to_dense().frobenius_norm_sq(), 0.0);
    }

    #[test]
    fn orthonormality_error_detects_bad_basis() {
        let good = random_projector(7, 3, 11);
        assert!(good.basis_orthonormality_error() < 1e-10);
        let mut rng = Rng::new(12);
        let bad = Projector::from_basis(Matrix::gaussian(7, 3, &mut rng).scaled(2.0));
        assert!(bad.basis_orthonormality_error() > 0.1);
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let p = random_projector(5, 2, 13);
        let a = Matrix::zeros(4, 6);
        assert!(p.apply(&a).is_err());
        assert!(p.residual_sq(&a).is_err());
    }
}
