//! Best rank-k approximations, projection matrices, and the Frobenius-error
//! quantities from the paper's problem definition (§I):
//!
//! * additive error:  `‖A − AP‖²_F ≤ ‖A − [A]ₖ‖²_F + ε‖A‖²_F`
//! * relative error:  `‖A − AP‖²_F ≤ (1+ε)·‖A − [A]ₖ‖²_F`
//!
//! where `P` is a `d × d` rank-≤k projection onto a row subspace.

use crate::matrix::Matrix;
use crate::projector::Projector;
use crate::svd::{svd, Svd};
use crate::{LinalgError, Result};

/// The best rank-k approximation `[A]ₖ` together with the quantities the
/// paper's error definitions need.
#[derive(Debug, Clone)]
pub struct RankKApprox {
    /// Target rank `k`.
    pub k: usize,
    /// The rank-k projection `P = VₖVₖᵀ`, stored factored as its basis
    /// (`d × k`); apply with [`Projector::apply`], materialize with
    /// [`Projector::to_dense`].
    pub projection: Projector,
    /// `‖A − [A]ₖ‖²_F` (tail singular-value energy).
    pub error_sq: f64,
    /// `‖A‖²_F`.
    pub total_sq: f64,
}

/// Computes `[A]ₖ` data from a precomputed SVD.
pub fn best_rank_k_from_svd(d: &Svd, total_sq: f64, k: usize) -> RankKApprox {
    RankKApprox {
        k,
        projection: Projector::from_basis(d.top_right_vectors(k)),
        error_sq: d.tail_energy(k),
        total_sq,
    }
}

/// Computes the best rank-k approximation of `a` (via a full SVD).
pub fn best_rank_k(a: &Matrix, k: usize) -> Result<RankKApprox> {
    if k == 0 {
        return Err(LinalgError::InvalidArgument("best_rank_k: k = 0".into()));
    }
    let d = svd(a)?;
    Ok(best_rank_k_from_svd(&d, a.frobenius_norm_sq(), k))
}

/// `‖A − [A]ₖ‖²_F` alone (Eckart–Young tail energy).
pub fn best_rank_k_error_sq(a: &Matrix, k: usize) -> Result<f64> {
    Ok(svd(a)?.tail_energy(k))
}

/// Builds the projection `P = V·Vᵀ` from a `d × k` matrix whose columns are
/// an orthonormal basis of the target row subspace.
pub fn projection_from_basis(v: &Matrix) -> Matrix {
    v.matmul(&v.transpose()).expect("shape by construction")
}

/// `‖A − AP‖²_F` for a projection matrix `P` (`d × d`).
///
/// Uses the matrix Pythagorean identity `‖A − AP‖²_F = ‖A‖²_F − ‖AP‖²_F`
/// (§II) which holds for any orthogonal projection `P`; computing `AP` once
/// and its norm avoids forming the residual.
pub fn residual_sq(a: &Matrix, p: &Matrix) -> Result<f64> {
    let ap = a.matmul(p)?;
    let r = a.frobenius_norm_sq() - ap.frobenius_norm_sq();
    // Guard tiny negative values from floating point.
    Ok(r.max(0.0))
}

/// `‖AP‖²_F` — the captured energy a projection retains. Algorithm 1's
/// boosting step keeps the repetition maximizing this on `B`.
pub fn captured_sq(a: &Matrix, p: &Matrix) -> Result<f64> {
    Ok(a.matmul(p)?.frobenius_norm_sq())
}

/// Verifies that `p` is (numerically) an orthogonal projection of rank ≤ k:
/// symmetric, idempotent, with trace ≤ k + tol.
pub fn is_projection_of_rank_at_most(p: &Matrix, k: usize, tol: f64) -> bool {
    let (n, m) = p.shape();
    if n != m {
        return false;
    }
    // Symmetry.
    for i in 0..n {
        for j in (i + 1)..n {
            if (p[(i, j)] - p[(j, i)]).abs() > tol {
                return false;
            }
        }
    }
    // Idempotence: ‖P² − P‖_F small.
    let pp = p.matmul(p).expect("square");
    if pp.sub(p).expect("shape").frobenius_norm() > tol * (n as f64) {
        return false;
    }
    // Rank = trace for projections.
    let trace: f64 = (0..n).map(|i| p[(i, i)]).sum();
    trace <= k as f64 + tol * (n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlra_util::Rng;

    /// A random matrix with an exactly rank-r component plus noise of scale σ.
    fn noisy_low_rank(m: usize, n: usize, r: usize, sigma: f64, rng: &mut Rng) -> Matrix {
        let u = Matrix::gaussian(m, r, rng);
        let v = Matrix::gaussian(r, n, rng);
        let mut a = u.matmul(&v).unwrap();
        let noise = Matrix::gaussian(m, n, rng);
        a.add_assign(&noise.scaled(sigma)).unwrap();
        a
    }

    #[test]
    fn projection_properties() {
        let mut rng = Rng::new(41);
        let a = Matrix::gaussian(10, 6, &mut rng);
        for k in 1..=4 {
            let approx = best_rank_k(&a, k).unwrap();
            assert!(is_projection_of_rank_at_most(
                &approx.projection.to_dense(),
                k,
                1e-8
            ));
        }
    }

    #[test]
    fn exact_low_rank_is_recovered() {
        let mut rng = Rng::new(42);
        let a = noisy_low_rank(12, 8, 2, 0.0, &mut rng);
        let approx = best_rank_k(&a, 2).unwrap();
        assert!(approx.error_sq < 1e-8 * approx.total_sq);
        let res = approx.projection.residual_sq(&a).unwrap();
        assert!(res < 1e-8 * approx.total_sq, "residual {res}");
    }

    #[test]
    fn residual_matches_explicit_subtraction() {
        let mut rng = Rng::new(43);
        let a = Matrix::gaussian(9, 5, &mut rng);
        let approx = best_rank_k(&a, 2).unwrap();
        let ap = approx.projection.apply(&a).unwrap();
        let explicit = a.sub(&ap).unwrap().frobenius_norm_sq();
        let viaid = approx.projection.residual_sq(&a).unwrap();
        assert!((explicit - viaid).abs() < 1e-8, "{explicit} vs {viaid}");
    }

    #[test]
    fn svd_projection_is_optimal() {
        // The SVD projection must beat any random rank-k projection.
        let mut rng = Rng::new(44);
        let a = noisy_low_rank(15, 8, 3, 0.3, &mut rng);
        let k = 3;
        let best = best_rank_k(&a, k).unwrap();
        let best_res = best.projection.residual_sq(&a).unwrap();
        assert!((best_res - best.error_sq).abs() < 1e-7 * best.total_sq);
        for trial in 0..10 {
            let mut r2 = Rng::new(1000 + trial);
            let basis = crate::qr::orthonormalize_columns(&Matrix::gaussian(8, k, &mut r2));
            let p = projection_from_basis(&basis);
            let res = residual_sq(&a, &p).unwrap();
            assert!(
                res + 1e-9 >= best_res,
                "random projection beat SVD: {res} < {best_res}"
            );
        }
    }

    #[test]
    fn pythagorean_identity() {
        let mut rng = Rng::new(45);
        let a = Matrix::gaussian(7, 6, &mut rng);
        let approx = best_rank_k(&a, 2).unwrap();
        let cap = approx.projection.captured_sq(&a).unwrap();
        let res = approx.projection.residual_sq(&a).unwrap();
        assert!((cap + res - a.frobenius_norm_sq()).abs() < 1e-8);
    }

    #[test]
    fn k_zero_rejected() {
        let a = Matrix::identity(3);
        assert!(best_rank_k(&a, 0).is_err());
    }

    #[test]
    fn k_at_least_rank_gives_zero_error() {
        let mut rng = Rng::new(46);
        let a = Matrix::gaussian(4, 6, &mut rng);
        // rank(A) <= 4, so k = 4 (on a 6-col matrix) is exact.
        let approx = best_rank_k(&a, 4).unwrap();
        assert!(approx.error_sq < 1e-8);
        // k beyond min(m, n) also fine.
        let approx = best_rank_k(&a, 10).unwrap();
        assert!(approx.error_sq < 1e-8);
    }

    #[test]
    fn error_sq_decreases_in_k() {
        let mut rng = Rng::new(47);
        let a = noisy_low_rank(20, 10, 5, 0.5, &mut rng);
        let mut prev = f64::INFINITY;
        for k in 1..=8 {
            let e = best_rank_k_error_sq(&a, k).unwrap();
            assert!(e <= prev + 1e-12, "k={k}: {e} > {prev}");
            prev = e;
        }
    }

    #[test]
    fn is_projection_rejects_non_projections() {
        let mut rng = Rng::new(48);
        let a = Matrix::gaussian(4, 4, &mut rng);
        assert!(!is_projection_of_rank_at_most(&a, 4, 1e-8));
        assert!(!is_projection_of_rank_at_most(
            &Matrix::zeros(2, 3),
            1,
            1e-8
        ));
        // Identity is a projection of rank n but not of rank 1.
        assert!(is_projection_of_rank_at_most(&Matrix::identity(3), 3, 1e-8));
        assert!(!is_projection_of_rank_at_most(
            &Matrix::identity(3),
            1,
            1e-8
        ));
    }
}
