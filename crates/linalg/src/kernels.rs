//! Cache-blocked, panel-parallel dense kernels with a **fixed summation
//! order**.
//!
//! Every multiplicative kernel here accumulates each output element as one
//! chain of additions over its contraction index in strictly ascending
//! order — exactly the chain the naive triple loop produces. Blocking only
//! reorders *which element* is worked on next, never the order of additions
//! *into* an element, and the thread split assigns disjoint contiguous row
//! panels of the output, so results are bit-identical to the
//! [`reference`] kernels for every shape, block size, and thread count.
//! That determinism is what lets the protocol layers (and
//! `tests/runtime_equivalence.rs`) keep their exact bit-equality contracts
//! while the kernels run blocked and parallel.
//!
//! Layout of one GEMM panel (rows of the output assigned to one worker):
//!
//! ```text
//! for each k-block (KC contraction steps: a KC × NC panel of B is L2-hot)
//!   for each j-block (NC output columns)
//!     for each j-tile (JW columns) × row-quad (MR rows):
//!       load the MR × JW out tile into register accumulators
//!       for k in k-block (ascending: the fixed summation order)
//!         one JW-wide B load + MR scalar A loads feed MR·JW FLOPs
//!       store the tile back
//! ```
//!
//! Unlike the seed kernels there is **no zero-skip branch**: skipping
//! `a[i][k] == 0.0` silently dropped `0.0 * NaN` and `0.0 * ∞`
//! contributions, masking non-finite inputs. Non-finite values now
//! propagate to the output as IEEE 754 dictates (regression-tested).

use crate::threads::for_each_row_panel;

/// Contraction block: a `KC × NC` panel of `B` (256·512·8B = 1 MiB) stays
/// resident in L2/L3 while every output row quad streams over it.
const KC: usize = 256;
/// Output-column block bounding the `B` panel held hot per k-block.
const NC: usize = 512;
/// Register tile height: one JW-wide `B` load feeds MR accumulator rows.
const MR: usize = 4;
/// Register tile width of the GEMM micro-kernel (four AVX-512 vectors or
/// eight AVX2 vectors of accumulators per tile row).
const JW: usize = 32;

/// The widest SIMD level the host supports, detected once. The kernel
/// bodies are ordinary safe Rust compiled three times under different
/// `#[target_feature]` sets; the lanes of a vectorized inner loop are
/// *distinct output elements*, so ISA choice — like blocking and thread
/// count — never reorders any element's summation chain and results stay
/// bit-identical across all three paths.
#[cfg(target_arch = "x86_64")]
mod isa {
    use std::sync::atomic::{AtomicU8, Ordering};

    #[derive(Clone, Copy, PartialEq, Eq)]
    pub enum Isa {
        /// Baseline x86-64 (SSE2).
        Scalar,
        /// 256-bit vectors.
        Avx2,
        /// 512-bit vectors.
        Avx512,
    }

    static DETECTED: AtomicU8 = AtomicU8::new(0);

    pub fn detect() -> Isa {
        match DETECTED.load(Ordering::Relaxed) {
            1 => return Isa::Scalar,
            2 => return Isa::Avx2,
            3 => return Isa::Avx512,
            _ => {}
        }
        let isa = if is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512vl") {
            Isa::Avx512
        } else if is_x86_feature_detected!("avx2") {
            Isa::Avx2
        } else {
            Isa::Scalar
        };
        DETECTED.store(
            match isa {
                Isa::Scalar => 1,
                Isa::Avx2 => 2,
                Isa::Avx512 => 3,
            },
            Ordering::Relaxed,
        );
        isa
    }
}

/// Compiles `$body_fn(args…)` under the baseline, AVX2, and AVX-512
/// feature sets and dispatches on the detected ISA. On non-x86 targets
/// only the baseline body exists.
macro_rules! isa_dispatch {
    ($base:ident => $(#[$doc:meta])* fn $name:ident($($arg:ident : $ty:ty),* $(,)?)) => {
        $(#[$doc])*
        #[allow(clippy::too_many_arguments)]
        fn $name($($arg: $ty),*) {
            #[cfg(target_arch = "x86_64")]
            {
                #[target_feature(enable = "avx2")]
                #[allow(clippy::too_many_arguments)]
                fn avx2($($arg: $ty),*) {
                    $base($($arg),*)
                }
                #[target_feature(enable = "avx512f,avx512vl")]
                #[allow(clippy::too_many_arguments)]
                fn avx512($($arg: $ty),*) {
                    $base($($arg),*)
                }
                match isa::detect() {
                    // SAFETY: the avx512f/avx512vl feature set was
                    // verified by `is_x86_feature_detected!` in
                    // `isa::detect`.
                    isa::Isa::Avx512 => return unsafe { avx512($($arg),*) },
                    // SAFETY: the avx2/fma feature set was verified by
                    // `is_x86_feature_detected!` in `isa::detect`.
                    isa::Isa::Avx2 => return unsafe { avx2($($arg),*) },
                    isa::Isa::Scalar => {}
                }
            }
            $base($($arg),*)
        }
    };
}

/// `out = a · b` where `a` is `m × kk` and `b` is `kk × n`, all row-major.
/// `out` must be zero-initialized.
pub(crate) fn matmul_into(a: &[f64], m: usize, kk: usize, b: &[f64], n: usize, out: &mut [f64]) {
    debug_assert_eq!(a.len(), m * kk);
    debug_assert_eq!(b.len(), kk * n);
    debug_assert_eq!(out.len(), m * n);
    let work = 2usize
        .saturating_mul(m)
        .saturating_mul(kk)
        .saturating_mul(n);
    for_each_row_panel(out, n, work, |first_row, panel| {
        gemm_panel(a, kk, 1, kk, b, n, first_row, panel);
    });
}

isa_dispatch!(gemm_panel_body =>
    /// One worker's GEMM output row panel at the widest supported ISA.
    /// `ars`/`acs` are the row/contraction strides into `a`, so the same
    /// body serves `A·B` (`ars = kk, acs = 1`) and `Aᵀ·B`
    /// (`ars = 1, acs = a_cols`).
    fn gemm_panel(
        a: &[f64],
        ars: usize,
        acs: usize,
        kk: usize,
        b: &[f64],
        n: usize,
        first_row: usize,
        out_panel: &mut [f64],
    )
);

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn gemm_panel_body(
    a: &[f64],
    ars: usize,
    acs: usize,
    kk: usize,
    b: &[f64],
    n: usize,
    first_row: usize,
    out_panel: &mut [f64],
) {
    let rows = out_panel.len() / n;
    let mut kb = 0;
    while kb < kk {
        let ke = (kb + KC).min(kk);
        let mut jb = 0;
        while jb < n {
            let je = (jb + NC).min(n);
            // MR × JW register micro-tile: the out tile lives in registers
            // across the whole k-block, so per k-step the only memory
            // traffic is one JW-wide b load and MR scalar a loads. Each
            // out element still receives its products in ascending-k
            // order — the loads/stores bracket the chain, they don't
            // reorder it.
            let mut jt = jb;
            while jt + JW <= je {
                let mut i = 0;
                while i + MR <= rows {
                    let gi = first_row + i;
                    let (b0, b1, b2, b3) =
                        (gi * ars, (gi + 1) * ars, (gi + 2) * ars, (gi + 3) * ars);
                    let (o01, o23) = out_panel[i * n..(i + MR) * n].split_at_mut(2 * n);
                    let (o0, o1) = o01.split_at_mut(n);
                    let (o2, o3) = o23.split_at_mut(n);
                    let mut c0 = [0.0f64; JW];
                    let mut c1 = [0.0f64; JW];
                    let mut c2 = [0.0f64; JW];
                    let mut c3 = [0.0f64; JW];
                    c0.copy_from_slice(&o0[jt..jt + JW]);
                    c1.copy_from_slice(&o1[jt..jt + JW]);
                    c2.copy_from_slice(&o2[jt..jt + JW]);
                    c3.copy_from_slice(&o3[jt..jt + JW]);
                    for k in kb..ke {
                        let bk: &[f64; JW] = (&b[k * n + jt..k * n + jt + JW])
                            .try_into()
                            .expect("JW window");
                        let ka = k * acs;
                        let (x0, x1, x2, x3) = (a[b0 + ka], a[b1 + ka], a[b2 + ka], a[b3 + ka]);
                        for l in 0..JW {
                            c0[l] += x0 * bk[l];
                            c1[l] += x1 * bk[l];
                            c2[l] += x2 * bk[l];
                            c3[l] += x3 * bk[l];
                        }
                    }
                    o0[jt..jt + JW].copy_from_slice(&c0);
                    o1[jt..jt + JW].copy_from_slice(&c1);
                    o2[jt..jt + JW].copy_from_slice(&c2);
                    o3[jt..jt + JW].copy_from_slice(&c3);
                    i += MR;
                }
                // Remainder rows under this j-tile.
                while i < rows {
                    let gi = first_row + i;
                    let base = gi * ars;
                    let oi = &mut out_panel[i * n + jt..i * n + jt + JW];
                    let mut c = [0.0f64; JW];
                    c.copy_from_slice(oi);
                    for k in kb..ke {
                        let bk = &b[k * n + jt..k * n + jt + JW];
                        let x = a[base + k * acs];
                        for l in 0..JW {
                            c[l] += x * bk[l];
                        }
                    }
                    oi.copy_from_slice(&c);
                    i += 1;
                }
                jt += JW;
            }
            // Remainder columns (je - jt < JW), axpy style.
            if jt < je {
                for i in 0..rows {
                    let gi = first_row + i;
                    let base = gi * ars;
                    let oi = &mut out_panel[i * n + jt..i * n + je];
                    for k in kb..ke {
                        let bk = &b[k * n + jt..k * n + je];
                        let x = a[base + k * acs];
                        for (o, &bv) in oi.iter_mut().zip(bk) {
                            *o += x * bv;
                        }
                    }
                }
            }
            jb = je;
        }
        kb = ke;
    }
}

/// `out = aᵀ · b` where `a` is `r × c` and `b` is `r × n`; `out` is `c × n`,
/// zero-initialized. Each output row `p` accumulates `Σᵢ a[i][p] · b[i][·]`
/// with `i` strictly ascending.
pub(crate) fn transpose_matmul_into(
    a: &[f64],
    r: usize,
    c: usize,
    b: &[f64],
    n: usize,
    out: &mut [f64],
) {
    debug_assert_eq!(a.len(), r * c);
    debug_assert_eq!(b.len(), r * n);
    debug_assert_eq!(out.len(), c * n);
    let work = 2usize.saturating_mul(r).saturating_mul(c).saturating_mul(n);
    for_each_row_panel(out, n, work, |first_row, panel| {
        // `Aᵀ·B` is GEMM with strided access into `a`: output row `p` reads
        // `a[i·c + p]`, i.e. row stride 1 and contraction stride `c`.
        gemm_panel(a, 1, c, r, b, n, first_row, panel);
    });
}

/// Upper triangle of `aᵀ · a` (`a` is `r × c`, `out` is `c × c`,
/// zero-initialized); the caller mirrors. The coordinator's `BᵀB`
/// accumulation, register-tiled over KC row blocks with `i` strictly
/// ascending per element.
pub(crate) fn gram_upper_into(a: &[f64], r: usize, c: usize, out: &mut [f64]) {
    debug_assert_eq!(a.len(), r * c);
    debug_assert_eq!(out.len(), c * c);
    let work = r.saturating_mul(c).saturating_mul(c);
    // Output row `p` only computes the `c − p` columns `q ≥ p`, so an
    // even row split would give the first worker ~3× the flops of the
    // last; weight the panel boundaries by each row's triangle width.
    crate::threads::for_each_row_panel_by_weight(
        out,
        c,
        work,
        |p| c - p,
        |first_row, panel| {
            gram_panel(a, r, c, first_row, panel);
        },
    );
}

isa_dispatch!(gram_panel_body =>
    /// One worker's upper-triangle gram row panel at the widest supported
    /// ISA.
    fn gram_panel(a: &[f64], r: usize, c: usize, first_row: usize, panel: &mut [f64])
);

/// Register-tiled triangular gram body: the same `MR × JW` accumulator
/// tile as the GEMM micro-kernel (`aᵀa` *is* `aᵀ·b` with `b = a`, so the
/// contraction strides match `transpose_matmul`'s), restricted to output
/// tiles on or above the diagonal. Per k-step inside a tile the only
/// memory traffic is one `JW`-wide row load plus `MR` scalar loads — the
/// out tile lives in registers for the whole `KC` block — where the old
/// body re-read and re-wrote every output element through L2 per k-step.
/// The ragged diagonal edge of each row quad (the up-to-`MR − 1` leading
/// columns where not all quad rows are active yet) and the right-hand
/// column tail accumulate per element over the same k-block, so every
/// output element still receives its products in strictly ascending-k
/// order and results stay bit-identical to [`reference::gram`].
#[inline(always)]
fn gram_panel_body(a: &[f64], r: usize, c: usize, first_row: usize, panel: &mut [f64]) {
    // Tiles sit on absolute JW-aligned column positions so the NC blocks
    // (NC is a multiple of JW) never split a tile.
    const _: () = assert!(NC.is_multiple_of(JW));
    let prows = panel.len() / c;
    let mut kb = 0;
    while kb < r {
        let ke = (kb + KC).min(r);
        let mut jb = 0;
        while jb < c {
            let je = (jb + NC).min(c);
            let mut p = 0;
            while p + MR <= prows {
                let g0 = first_row + p;
                // First JW-aligned column at/after the quad's last
                // diagonal; everything between a row's diagonal and it is
                // the ragged edge, accumulated per element.
                let jt0 = (g0 + MR - 1).next_multiple_of(JW);
                for m in 0..MR {
                    let gm = g0 + m;
                    for q in gm.max(jb)..jt0.min(je) {
                        let mut acc = panel[(p + m) * c + q];
                        for k in kb..ke {
                            acc += a[k * c + gm] * a[k * c + q];
                        }
                        panel[(p + m) * c + q] = acc;
                    }
                }
                let mut jt = jt0.max(jb);
                while jt + JW <= je {
                    let (o01, o23) = panel[p * c..(p + MR) * c].split_at_mut(2 * c);
                    let (o0, o1) = o01.split_at_mut(c);
                    let (o2, o3) = o23.split_at_mut(c);
                    let mut c0 = [0.0f64; JW];
                    let mut c1 = [0.0f64; JW];
                    let mut c2 = [0.0f64; JW];
                    let mut c3 = [0.0f64; JW];
                    c0.copy_from_slice(&o0[jt..jt + JW]);
                    c1.copy_from_slice(&o1[jt..jt + JW]);
                    c2.copy_from_slice(&o2[jt..jt + JW]);
                    c3.copy_from_slice(&o3[jt..jt + JW]);
                    for k in kb..ke {
                        let bk: &[f64; JW] = (&a[k * c + jt..k * c + jt + JW])
                            .try_into()
                            .expect("JW window");
                        let base = k * c + g0;
                        let (x0, x1, x2, x3) = (a[base], a[base + 1], a[base + 2], a[base + 3]);
                        for l in 0..JW {
                            c0[l] += x0 * bk[l];
                            c1[l] += x1 * bk[l];
                            c2[l] += x2 * bk[l];
                            c3[l] += x3 * bk[l];
                        }
                    }
                    o0[jt..jt + JW].copy_from_slice(&c0);
                    o1[jt..jt + JW].copy_from_slice(&c1);
                    o2[jt..jt + JW].copy_from_slice(&c2);
                    o3[jt..jt + JW].copy_from_slice(&c3);
                    jt += JW;
                }
                // Column tail (je − jt < JW, only at je == c), per element.
                for m in 0..MR {
                    let gm = g0 + m;
                    for q in jt.max(gm)..je {
                        let mut acc = panel[(p + m) * c + q];
                        for k in kb..ke {
                            acc += a[k * c + gm] * a[k * c + q];
                        }
                        panel[(p + m) * c + q] = acc;
                    }
                }
                p += MR;
            }
            // Remainder rows: 1 × JW tiles on the same aligned grid.
            while p < prows {
                let gp = first_row + p;
                let jt0 = gp.next_multiple_of(JW);
                for q in gp.max(jb)..jt0.min(je) {
                    let mut acc = panel[p * c + q];
                    for k in kb..ke {
                        acc += a[k * c + gp] * a[k * c + q];
                    }
                    panel[p * c + q] = acc;
                }
                let mut jt = jt0.max(jb);
                while jt + JW <= je {
                    let orow = &mut panel[p * c + jt..p * c + jt + JW];
                    let mut acc = [0.0f64; JW];
                    acc.copy_from_slice(orow);
                    for k in kb..ke {
                        let bk: &[f64; JW] = (&a[k * c + jt..k * c + jt + JW])
                            .try_into()
                            .expect("JW window");
                        let x = a[k * c + gp];
                        for l in 0..JW {
                            acc[l] += x * bk[l];
                        }
                    }
                    orow.copy_from_slice(&acc);
                    jt += JW;
                }
                for q in jt.max(gp)..je {
                    let mut acc = panel[p * c + q];
                    for k in kb..ke {
                        acc += a[k * c + gp] * a[k * c + q];
                    }
                    panel[p * c + q] = acc;
                }
                p += 1;
            }
            jb = je;
        }
        kb = ke;
    }
}

/// Tile edge for the blocked transpose: a 32×32 `f64` tile is 8 KiB read +
/// 8 KiB written, so both sides stay in L1 while the scattered axis walks.
const TB: usize = 32;

/// `out = aᵀ` via block swap: `a` is `m × n`, `out` is `n × m`.
pub(crate) fn transpose_into(a: &[f64], m: usize, n: usize, out: &mut [f64]) {
    debug_assert_eq!(a.len(), m * n);
    debug_assert_eq!(out.len(), m * n);
    let work = m.saturating_mul(n);
    for_each_row_panel(out, m, work, |first_row, panel| {
        let prows = panel.len() / m;
        let mut jb = 0;
        while jb < prows {
            let je = (jb + TB).min(prows);
            let mut ib = 0;
            while ib < m {
                let ie = (ib + TB).min(m);
                for j in jb..je {
                    let src_col = first_row + j;
                    let orow = &mut panel[j * m..(j + 1) * m];
                    for i in ib..ie {
                        orow[i] = a[i * n + src_col];
                    }
                }
                ib = ie;
            }
            jb = je;
        }
    });
}

/// The retained naive kernels: unblocked, single-threaded triple loops with
/// the same fixed summation order (and, like the blocked kernels, **no**
/// zero-skip). These are the comparison baseline for the bit-identity
/// proptests and the `kernels` bench; protocols never call them.
pub mod reference {
    use crate::matrix::Matrix;
    use crate::{LinalgError, Result};

    /// Naive `a · b` in i-k-j order.
    pub fn matmul(a: &Matrix, b: &Matrix) -> Result<Matrix> {
        if a.cols() != b.rows() {
            return Err(LinalgError::ShapeMismatch(format!(
                "reference matmul: {}x{} * {}x{}",
                a.rows(),
                a.cols(),
                b.rows(),
                b.cols()
            )));
        }
        let (m, n) = (a.rows(), b.cols());
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = a.row(i);
            let out_row = out.row_mut(i);
            for (k, &aik) in a_row.iter().enumerate() {
                let b_row = b.row(k);
                for (o, &bkj) in out_row.iter_mut().zip(b_row) {
                    *o += aik * bkj;
                }
            }
        }
        Ok(out)
    }

    /// Naive `aᵀ · b` in i-p-q order.
    pub fn transpose_matmul(a: &Matrix, b: &Matrix) -> Result<Matrix> {
        if a.rows() != b.rows() {
            return Err(LinalgError::ShapeMismatch(format!(
                "reference transpose_matmul: {}x{} ᵀ· {}x{}",
                a.rows(),
                a.cols(),
                b.rows(),
                b.cols()
            )));
        }
        let mut out = Matrix::zeros(a.cols(), b.cols());
        for i in 0..a.rows() {
            let a_row = a.row(i);
            let b_row = b.row(i);
            for (p, &ap) in a_row.iter().enumerate() {
                let out_row = out.row_mut(p);
                for (o, &bq) in out_row.iter_mut().zip(b_row) {
                    *o += ap * bq;
                }
            }
        }
        Ok(out)
    }

    /// Naive `aᵀ · a` as a sum of row outer products (upper triangle
    /// mirrored), matching [`Matrix::gram`]'s summation order.
    pub fn gram(a: &Matrix) -> Matrix {
        let d = a.cols();
        let mut g = Matrix::zeros(d, d);
        for i in 0..a.rows() {
            let r = a.row(i).to_vec();
            for p in 0..d {
                let rp = r[p];
                let g_row = &mut g.row_mut(p)[p..];
                for (o, &rq) in g_row.iter_mut().zip(&r[p..]) {
                    *o += rp * rq;
                }
            }
        }
        for p in 0..d {
            for q in (p + 1)..d {
                g[(q, p)] = g[(p, q)];
            }
        }
        g
    }

    /// Naive elementwise transpose.
    pub fn transpose(a: &Matrix) -> Matrix {
        let mut t = Matrix::zeros(a.cols(), a.rows());
        for i in 0..a.rows() {
            for (j, &v) in a.row(i).iter().enumerate() {
                t[(j, i)] = v;
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use dlra_util::Rng;

    fn random(m: usize, n: usize, seed: u64) -> Matrix {
        let mut rng = Rng::new(seed);
        Matrix::gaussian(m, n, &mut rng)
    }

    #[test]
    fn blocked_matmul_is_bit_identical_to_reference_across_shapes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 2),
            (4, 4, 4),
            (5, 7, 9),
            (17, 33, 13),
            (70, 130, 41),
            (MR + 1, KC + 3, NC + 5),
        ] {
            let a = random(m, k, 1000 + (m * k) as u64);
            let b = random(k, n, 2000 + (k * n) as u64);
            let fast = a.matmul(&b).unwrap();
            let slow = reference::matmul(&a, &b).unwrap();
            assert_eq!(fast.as_slice(), slow.as_slice(), "({m},{k},{n})");
        }
    }

    #[test]
    fn blocked_transpose_matmul_is_bit_identical_to_reference() {
        for &(r, c, n) in &[(1, 1, 1), (7, 3, 5), (40, 12, 9), (130, 37, 61)] {
            let a = random(r, c, 31 + r as u64);
            let b = random(r, n, 77 + n as u64);
            let fast = a.transpose_matmul(&b).unwrap();
            let slow = reference::transpose_matmul(&a, &b).unwrap();
            assert_eq!(fast.as_slice(), slow.as_slice(), "({r},{c},{n})");
        }
    }

    #[test]
    fn blocked_gram_is_bit_identical_to_reference() {
        for &(r, c) in &[(1, 1), (9, 4), (50, 17), (200, 33)] {
            let a = random(r, c, 5 + (r * c) as u64);
            assert_eq!(
                a.gram().as_slice(),
                reference::gram(&a).as_slice(),
                "({r},{c})"
            );
        }
    }

    #[test]
    fn blocked_transpose_matches_reference() {
        for &(m, n) in &[(1, 1), (5, 9), (33, 65), (100, 3)] {
            let a = random(m, n, 9 + (m + n) as u64);
            assert_eq!(
                a.transpose().as_slice(),
                reference::transpose(&a).as_slice()
            );
        }
    }
}
