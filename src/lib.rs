//! # dlra — Distributed Low Rank Approximation of Implicit Functions of a Matrix
//!
//! A from-scratch Rust reproduction of Woodruff & Zhong, ICDE 2016
//! (arXiv:1601.07721). This facade crate re-exports the whole workspace:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`core`] (`dlra-core`) | the generalized partition model, Algorithm 1, applications (RFF / GM pooling / robust PCA) |
//! | [`sampler`] (`dlra-sampler`) | the generalized Z-sampler (Algorithms 2–4), baselines |
//! | [`sketch`] (`dlra-sketch`) | CountSketch, AMS F₂, heavy hitters, k-wise hashing |
//! | [`comm`] (`dlra-comm`) | star-topology simulation with word-exact accounting, the substrate-generic `Collectives` trait, the bit-exact wire codec |
//! | [`net`] (`dlra-net`) | networked substrate: the servers behind real TCP sockets, with bytes-on-the-wire auditing against the ledger |
//! | [`runtime`] (`dlra-runtime`) | threaded message-passing substrate + the multi-dataset `Service` façade (typed query builder, tickets with cancellation/deadlines) |
//! | [`obs`] (`dlra-obs`) | structured tracing (chrome://tracing export via `DLRA_TRACE`) and the per-dataset metrics registry |
//! | [`linalg`] (`dlra-linalg`) | matrices, QR, symmetric eigen, Jacobi SVD, rank-k tools |
//! | [`data`] (`dlra-data`) | synthetic stand-ins for the paper's datasets |
//! | [`lowerbounds`] (`dlra-lowerbounds`) | executable Theorem 4 / 6 / 8 reductions |
//! | [`util`] (`dlra-util`) | deterministic RNG and numeric helpers |
//!
//! ## Quickstart
//!
//! ```
//! use dlra::prelude::*;
//! use dlra::util::Rng;
//!
//! // Three servers hold additive shares of a 300×24 matrix.
//! let mut rng = Rng::new(1);
//! let global = dlra::data::noisy_low_rank(300, 24, 4, 0.05, &mut rng);
//! let parts = dlra::data::split_additively(&global, 3, &mut rng);
//! let mut model = PartitionModel::new(parts, EntryFunction::Identity).unwrap();
//!
//! // Rank-4 approximation from 80 sampled rows.
//! let cfg = Algorithm1Config { k: 4, r: 80, ..Algorithm1Config::default() };
//! let out = run_algorithm1(&mut model, &cfg).unwrap();
//!
//! let report = evaluate_projection(&model.global_matrix(), &out.projection, 4).unwrap();
//! assert!(report.additive_error < 0.2);
//! println!("words used: {}", out.comm.total_words());
//! ```

#![forbid(unsafe_code)]
pub use dlra_comm as comm;
pub use dlra_core as core;
pub use dlra_data as data;
pub use dlra_linalg as linalg;
pub use dlra_lowerbounds as lowerbounds;
pub use dlra_net as net;
pub use dlra_obs as obs;
pub use dlra_runtime as runtime;
pub use dlra_sampler as sampler;
pub use dlra_sketch as sketch;
pub use dlra_util as util;

/// One-stop imports for typical use.
pub mod prelude {
    pub use dlra_core::prelude::*;
    pub use dlra_obs::metrics::{
        DatasetMetricsSnapshot, HistogramSnapshot, KernelPoolSnapshot, MetricsSnapshot,
        PlanCacheSnapshot, PressureSnapshot,
    };
    pub use dlra_runtime::{
        DatasetHandle, PlanCacheStats, PlanUse, Query, QueryError, QueryOutcome, Service,
        ServiceConfig, ServiceError, Ticket,
    };
    pub use dlra_sampler::{ZSampler, ZSamplerParams};
}
