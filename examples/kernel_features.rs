//! PCA of Gaussian random Fourier features (paper §VI-A, the Forest Cover /
//! KDDCUP99 experiments): raw data is partitioned arbitrarily across
//! servers, and we approximate the top principal components of its RFF
//! kernel expansion by *uniform* row sampling — the feature rows all have
//! norm ≈ √d, so no fancy sampler is needed and the only communication is
//! collecting Θ(k²/ε²) raw rows.
//!
//! Run with: `cargo run --release --example kernel_features`

use dlra::core::apps::rff::{run_rff_pca, RffMap};
use dlra::prelude::*;

fn main() {
    // Forest-Cover-like clustered base data: 3000×54 on 10 servers.
    let ds = dlra::data::forest_cover_like(1, 3);
    let raw_dims = ds.parts[0].cols();
    let mut model = PartitionModel::new(ds.parts.clone(), EntryFunction::Identity).unwrap();

    // 128-dimensional Gaussian RFF map (bandwidth 2.0).
    let map = RffMap::new(raw_dims, 128, 2.0, 7);
    let k = 9;

    println!(
        "dataset: {} — {} points × {raw_dims} raw dims → {} Fourier features\n",
        ds.name,
        ds.parts[0].rows(),
        map.feature_dim()
    );

    // Evaluation target: the full feature expansion of the aggregated data.
    let global_features = map.expand_matrix(&model.global_matrix());

    for &r in &[60usize, 150, 400] {
        let out = run_rff_pca(&mut model, &map, k, r, 100 + r as u64).expect("rff run");
        let eval = evaluate_projection(&global_features, &out.projection, k).expect("eval");
        let ratio = out.comm.total_words() as f64 / model.total_local_words() as f64;
        println!(
            "  r = {r:4}: additive error {:9.3e}, relative error {:7.4}, comm ratio {:.4}",
            eval.additive_error, eval.relative_error, ratio
        );
    }

    println!(
        "\nRelative error stays near 1 — RFF spectra are flat, so even the\n\
         optimal rank-k residual is large and easy to match (paper Figure 2)."
    );
}
