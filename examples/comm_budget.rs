//! The communication–accuracy frontier: sweep the total communication
//! budget (as a fraction of the data size, the paper's "ratio") and watch
//! the additive error fall — the tradeoff underlying every panel of
//! Figure 1 — with a per-phase breakdown from the ledger transcript.
//!
//! Run with: `cargo run --release --example comm_budget`

use dlra::prelude::*;
use dlra::util::Rng;

fn main() {
    let mut rng = Rng::new(7);
    let (s, n, d, k) = (6usize, 800usize, 48usize, 4usize);
    let global = dlra::data::noisy_low_rank(n, d, k, 0.15, &mut rng);
    let parts = dlra::data::split_with_noise_shares(&global, s, 0.4, &mut rng);
    let mut model = PartitionModel::new(parts, EntryFunction::Identity).unwrap();
    let data_words = model.total_local_words();
    let truth = model.global_matrix();

    println!(
        "{} servers × {}×{} local matrices; total data {} words; k = {k}\n",
        s, n, d, data_words
    );
    println!(
        "{:>7} {:>6} {:>12} {:>10} {:>10}",
        "ratio", "r", "additive", "relative", "achieved"
    );

    model.cluster_mut().ledger().set_record_events(true);
    for &ratio in &[0.5, 0.25, 0.1, 0.05, 0.02] {
        let budget = ratio * data_words as f64;
        let r = ((0.4 * budget / ((s - 1) as f64 * d as f64)) as usize).clamp(2 * k, n);
        let params = dlra::prelude::ZSamplerParams::practical(
            (n * d) as u64,
            ((0.6 * budget) / (s as f64 * 2.0)) as u64,
        );
        let cfg = Algorithm1Config {
            k,
            r,
            sampler: SamplerKind::Z(params),
            seed: (ratio * 1e4) as u64,
            ..Algorithm1Config::default()
        };
        let out = run_algorithm1(&mut model, &cfg).expect("run");
        let eval = evaluate_projection(&truth, &out.projection, k).expect("eval");
        println!(
            "{:>7.3} {:>6} {:>12.3e} {:>10.4} {:>10.4}",
            ratio,
            r,
            eval.additive_error,
            eval.relative_error,
            out.comm.total_words() as f64 / data_words as f64
        );
    }

    println!("\nper-phase communication breakdown (all runs, words incl. frames):");
    for (label, words, msgs) in model.cluster().ledger().by_label() {
        println!("  {label:<18} {words:>10} words in {msgs:>5} messages");
    }
}
