//! Softmax (generalized mean) pooling PCA (paper §VI-B, the Caltech-101 /
//! Scenes experiments): per-image patch codes are pooled on each server;
//! the global matrix is the GM of the per-server pools, with `p` sweeping
//! from average pooling (p = 1) toward max pooling (p = 20).
//!
//! Run with: `cargo run --release --example softmax_pooling`

use dlra::core::apps::pooling::run_gm_pooling_pca;
use dlra::prelude::*;

fn main() {
    // Scenes-like pooled codes: 1000 images × 256 codewords on 10 servers.
    let ds = dlra::data::scenes_like(1, 5);
    let k = 9;
    let r = 220;

    println!(
        "dataset: {} — {} images × {} codewords on {} servers\n",
        ds.name,
        ds.parts[0].rows(),
        ds.parts[0].cols(),
        ds.parts.len()
    );
    println!("P-norm pooling sweep (paper Figure 1, Scenes panels):");

    for &p in &[1.0, 2.0, 5.0, 20.0] {
        let (out, model) = run_gm_pooling_pca(
            ds.parts.clone(),
            p,
            k,
            r,
            ZSamplerParams::default(),
            41 + p as u64,
        )
        .expect("pooling run");
        let truth = model.global_matrix();
        let eval = evaluate_projection(&truth, &out.projection, k).expect("eval");
        let ratio = out.comm.total_words() as f64 / model.total_local_words() as f64;
        println!(
            "  P = {p:4}: additive error {:9.3e}, relative error {:7.4}, comm ratio {:.3}",
            eval.additive_error, eval.relative_error, ratio
        );
    }

    println!(
        "\nThe sampler's communication is independent of p (§VI-B): the same\n\
         ℓ_2/p machinery serves average pooling and near-max pooling alike."
    );
}
