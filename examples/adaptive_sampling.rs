//! Adaptive multi-round sampling (the library's extension answering the
//! paper's §IX open question for linear f): at equal total row budget,
//! later rounds target the residual left by earlier rounds, sharpening the
//! tail of the approximation.
//!
//! Run with: `cargo run --release --example adaptive_sampling`

use dlra::comm::CostModel;
use dlra::core::adaptive::{run_adaptive, AdaptiveConfig};
use dlra::prelude::*;
use dlra::util::Rng;

fn main() {
    let mut rng = Rng::new(77);
    // Strong rank-4 signal + structured tail.
    let u = dlra::linalg::Matrix::gaussian(1200, 4, &mut rng).scaled(4.0);
    let v = dlra::linalg::Matrix::gaussian(4, 48, &mut rng);
    let mut a = u.matmul(&v).unwrap();
    a.add_assign(&dlra::linalg::Matrix::gaussian(1200, 48, &mut rng).scaled(0.5))
        .unwrap();
    let parts = dlra::data::split_with_noise_shares(&a, 6, 0.4, &mut rng);

    let k = 4;
    let total_rows = 120;
    println!("1200×48 global matrix, k = {k}, total row budget {total_rows}\n");
    println!(
        "{:>7} {:>13} {:>10} {:>12} {:>12}",
        "rounds", "additive", "relative", "words", "est. WAN"
    );

    for &rounds in &[1usize, 2, 3, 4] {
        let mut model = PartitionModel::new(parts.clone(), EntryFunction::Identity).unwrap();
        let cfg = AdaptiveConfig {
            k,
            rounds,
            r_per_round: total_rows / rounds,
            params: ZSamplerParams::practical((1200 * 48) as u64, 3000),
            seed: 5 + rounds as u64,
        };
        let out = run_adaptive(&mut model, &cfg).expect("adaptive run");
        let eval = evaluate_projection(&a, &out.projection, k).expect("eval");
        let wan = CostModel::wide_area().estimate_seconds(&out.comm);
        println!(
            "{:>7} {:>13.4e} {:>10.4} {:>12} {:>11.2}s",
            rounds,
            eval.additive_error,
            eval.relative_error,
            out.comm.total_words(),
            wan
        );
    }

    println!(
        "\nMore rounds spend extra communication (basis broadcasts + extra\n\
         sampler passes) to focus the same row budget on what is still\n\
         unexplained — the additive error tightens toward the optimum."
    );
}
