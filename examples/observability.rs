//! Observability end to end: a two-tenant mixed workload behind one
//! `Service`, then every export format the registry and tracer offer —
//! the human-readable summary, JSON, Prometheus text, and a
//! chrome://tracing trace file.
//!
//! Run with: `cargo run --release --example observability`
//!
//! The trace is written to `DLRA_TRACE` if set, else to
//! `target/trace_observability.json`; open it at `chrome://tracing` or
//! <https://ui.perfetto.dev>.

use dlra::obs::trace;
use dlra::prelude::*;
use dlra::util::Rng;

fn tenant_shares(
    n: usize,
    d: usize,
    rank: usize,
    servers: usize,
    seed: u64,
) -> Vec<dlra::linalg::Matrix> {
    let mut rng = Rng::new(seed);
    let global = dlra::data::noisy_low_rank(n, d, rank, 0.1, &mut rng);
    dlra::data::split_with_noise_shares(&global, servers, 0.4, &mut rng)
}

fn main() {
    // Tracing is normally armed by the DLRA_TRACE environment variable;
    // the example arms it explicitly so it always produces a trace.
    let trace_path = std::env::var("DLRA_TRACE")
        .unwrap_or_else(|_| "target/trace_observability.json".to_string());
    trace::enable(&trace_path);

    let mut service = Service::new(ServiceConfig::default());
    let alpha = service
        .load("tenant-alpha", tenant_shares(1500, 40, 5, 5, 11))
        .expect("load alpha");
    let beta = service
        .load("tenant-beta", tenant_shares(900, 28, 4, 3, 22))
        .expect("load beta");

    // --- Mixed workload: repeated Z queries (plan-cache hits), distinct
    // Z queries (misses), uniform queries (unplanned path), and one
    // deliberately cancelled ticket — so every counter moves.
    let z = |k: usize, r: usize, seed: u64| {
        Query::rank(k)
            .samples(r)
            .sampler(SamplerKind::Z(ZSamplerParams::default()))
            .seed(seed)
            .build()
            .expect("valid query")
    };
    let uniform = |k: usize, r: usize, seed: u64| {
        Query::rank(k)
            .samples(r)
            .sampler(SamplerKind::Uniform)
            .seed(seed)
            .build()
            .expect("valid query")
    };

    let mut tickets = Vec::new();
    for round in 0..3u64 {
        tickets.push(alpha.submit(&z(5, 60, 301))); // shared plan key
        tickets.push(alpha.submit(&z(4, 48, 300 + round))); // distinct keys
        tickets.push(beta.submit(&z(4, 40, 302))); // shared plan key
        tickets.push(beta.submit(&uniform(3, 30, 400 + round)));
    }
    let cancelled = alpha.submit(&z(5, 60, 999));
    let _ = cancelled.cancel();

    let mut completed = 0;
    for ticket in tickets {
        if ticket.wait().is_ok() {
            completed += 1;
        }
    }
    println!("workload done: {completed} queries completed, 1 cancelled\n");

    let metrics = service.metrics().expect("metrics enabled by default");

    println!("=== summary ===\n{metrics}");
    println!("=== JSON ===\n{}\n", metrics.to_json());
    println!("=== Prometheus ===\n{}", metrics.to_prometheus());

    service.shutdown(); // also flushes the tracer
    println!(
        "trace: {} ({} events, {} dropped) — open at chrome://tracing",
        trace_path,
        trace::recorded(),
        trace::dropped()
    );
}
