//! Robust PCA with the Huber ψ-function (paper §VI-C, the isolet
//! experiment): a few entries of the data are corrupted with enormous
//! noise, the matrix is partitioned *entrywise* across servers (so no
//! server can spot the corruption locally), and the entrywise Huber cap is
//! applied implicitly by the protocol.
//!
//! Run with: `cargo run --release --example robust_pca`

use dlra::core::apps::robust::{huber_threshold_from, run_robust_pca};
use dlra::prelude::*;
use dlra::util::Rng;

fn main() {
    let mut rng = Rng::new(99);

    // Clean rank-5 signal, 800×48.
    let clean = dlra::data::noisy_low_rank(800, 48, 5, 0.05, &mut rng);

    // Corrupt 30 random entries catastrophically.
    let mut dirty = clean.clone();
    for _ in 0..30 {
        let i = rng.index(800);
        let j = rng.index(48);
        dirty[(i, j)] = 2e4 * (1.0 + rng.f64());
    }

    // Arbitrary (entrywise) partition across 10 servers.
    let parts = dlra::data::split_entrywise(&dirty, 10, &mut rng);

    let k = 5;
    let r = 150;

    // --- Naive PCA (f = identity): the outliers own the spectrum.
    let mut naive_model = PartitionModel::new(parts.clone(), EntryFunction::Identity).unwrap();
    let cfg = Algorithm1Config {
        k,
        r,
        sampler: SamplerKind::Z(ZSamplerParams::default()),
        seed: 1,
        ..Algorithm1Config::default()
    };
    let naive = run_algorithm1(&mut naive_model, &cfg).expect("naive run");
    // Judge the naive projection against the CLEAN signal.
    let naive_eval = evaluate_projection(&clean, &naive.projection, k).unwrap();

    // --- Robust PCA: Huber ψ capping at ~8× the benign median magnitude.
    let threshold = huber_threshold_from(&parts, 8.0).min(100.0);
    let (robust, robust_model) = run_robust_pca(
        parts,
        EntryFunction::Huber { k: threshold },
        k,
        r,
        ZSamplerParams::default(),
        2,
    )
    .expect("robust run");
    let robust_eval = evaluate_projection(&clean, &robust.projection, k).unwrap();
    let capped_eval =
        evaluate_projection(&robust_model.global_matrix(), &robust.projection, k).unwrap();

    println!("Huber threshold (8× median |entry|): {threshold:.2}\n");
    println!("residual of the CLEAN signal under each projection (lower = better):");
    println!(
        "  naive PCA on corrupted data : captured {:6.2}% of clean energy",
        100.0 * (1.0 - naive_eval.residual_sq / naive_eval.total_sq)
    );
    println!(
        "  Huber robust PCA            : captured {:6.2}% of clean energy",
        100.0 * (1.0 - robust_eval.residual_sq / robust_eval.total_sq)
    );
    println!(
        "\nadditive error on the ψ-capped matrix (the paper's Figure 1 'isolet' metric): {:.3e}",
        capped_eval.additive_error
    );
    println!(
        "communication: {} words (naive) vs {} words (robust)",
        naive.comm.total_words(),
        robust.comm.total_words()
    );
}
