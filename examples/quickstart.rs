//! Quickstart: distributed low-rank approximation of a matrix that exists
//! only as additive shares across servers — served through the `Service`
//! façade with the typed query builder.
//!
//! Run with: `cargo run --release --example quickstart`

use dlra::core::metrics::predicted_additive_error;
use dlra::prelude::*;
use dlra::util::Rng;

fn main() {
    // --- Data: a 1000×64 matrix with a planted rank-6 signal, split into
    // additive shares across 8 servers. No single server's share resembles
    // the global matrix; only the sum is meaningful.
    let mut rng = Rng::new(2024);
    let global = dlra::data::noisy_low_rank(1000, 64, 6, 0.1, &mut rng);
    let parts = dlra::data::split_with_noise_shares(&global, 8, 0.5, &mut rng);

    // A model over the same shares, used only to evaluate against the true
    // global matrix (which the protocol itself never materializes).
    let model =
        PartitionModel::new(parts.clone(), EntryFunction::Identity).expect("uniform shapes");

    // --- Serving: make the shares resident in a Service. Loading shares
    // the matrix storage copy-on-write; queries dispatch with O(s) handle
    // clones, never copies of the data.
    let service = Service::new(ServiceConfig::default());
    let dataset = service.load("planted", parts).expect("load dataset");
    println!(
        "dataset '{}': servers: {}, global shape: {:?}",
        dataset.name(),
        dataset.num_servers(),
        dataset.shape()
    );
    println!(
        "sum of local data sizes: {} words\n",
        model.total_local_words()
    );

    // --- Protocol: Algorithm 1 with the generalized Z-sampler (z = f² = x²).
    // Sketch sizes are derived from a communication budget: aim the whole
    // protocol at ~25% of the total local data size.
    let k = 6;
    let budget_per_server_pass = model.total_local_words() / (4 * 2 * model.num_servers() as u64);
    let flat_dim = (model.shape().0 * model.shape().1) as u64;
    let params = ZSamplerParams::practical(flat_dim, budget_per_server_pass);

    // Three queries built through the typed builder — validated at
    // construction, not mid-protocol — and submitted concurrently; the
    // tickets resolve as executors deliver.
    let tickets: Vec<(usize, Ticket)> = [40usize, 100, 250]
        .into_iter()
        .map(|r| {
            let query = Query::rank(k)
                .samples(r)
                .sampler(SamplerKind::Z(params.clone()))
                .seed(7 + r as u64)
                .build()
                .expect("valid query");
            (r, dataset.submit(&query))
        })
        .collect();

    for (r, ticket) in tickets {
        let out = ticket.wait().expect("query served").output;

        // --- Evaluation against the true global matrix.
        let truth = model.global_matrix();
        let report = evaluate_projection(&truth, &out.projection, k).expect("eval");

        let ratio = out.comm.total_words() as f64 / model.total_local_words() as f64;
        println!(
            "r = {r:4}: additive error {:10.3e}  (prediction k²/r = {:.3e}), \
             relative error {:.4}, comm {:>8} words (ratio {:.3})",
            report.additive_error,
            predicted_additive_error(k, r),
            report.relative_error,
            out.comm.total_words(),
            ratio,
        );
    }

    println!("\nAs in Figure 1 of the paper, the measured additive error sits well\nbelow the k²/r prediction and decreases as more rows are sampled.");
}
