//! Quickstart: distributed low-rank approximation of a matrix that exists
//! only as additive shares across servers.
//!
//! Run with: `cargo run --release --example quickstart`

use dlra::core::metrics::predicted_additive_error;
use dlra::prelude::*;
use dlra::util::Rng;

fn main() {
    // --- Data: a 1000×64 matrix with a planted rank-6 signal, split into
    // additive shares across 8 servers. No single server's share resembles
    // the global matrix; only the sum is meaningful.
    let mut rng = Rng::new(2024);
    let global = dlra::data::noisy_low_rank(1000, 64, 6, 0.1, &mut rng);
    let parts = dlra::data::split_with_noise_shares(&global, 8, 0.5, &mut rng);
    let mut model = PartitionModel::new(parts, EntryFunction::Identity).expect("uniform shapes");

    println!(
        "servers: {}, global shape: {:?}",
        model.num_servers(),
        model.shape()
    );
    println!(
        "sum of local data sizes: {} words\n",
        model.total_local_words()
    );

    // --- Protocol: Algorithm 1 with the generalized Z-sampler (z = f² = x²).
    // Sketch sizes are derived from a communication budget: aim the whole
    // protocol at ~25% of the total local data size.
    let k = 6;
    let budget_per_server_pass = model.total_local_words() / (4 * 2 * model.num_servers() as u64);
    let flat_dim = (model.shape().0 * model.shape().1) as u64;
    let params = ZSamplerParams::practical(flat_dim, budget_per_server_pass);
    for &r in &[40usize, 100, 250] {
        let cfg = Algorithm1Config {
            k,
            r,
            sampler: SamplerKind::Z(params.clone()),
            seed: 7 + r as u64,
            ..Algorithm1Config::default()
        };
        let out = run_algorithm1(&mut model, &cfg).expect("protocol run");

        // --- Evaluation against the true global matrix (which the protocol
        // itself never materializes).
        let truth = model.global_matrix();
        let report = evaluate_projection(&truth, &out.projection, k).expect("eval");

        let ratio = out.comm.total_words() as f64 / model.total_local_words() as f64;
        println!(
            "r = {r:4}: additive error {:10.3e}  (prediction k²/r = {:.3e}), \
             relative error {:.4}, comm {:>8} words (ratio {:.3})",
            report.additive_error,
            predicted_additive_error(k, r),
            report.relative_error,
            out.comm.total_words(),
            ratio,
        );
    }

    println!("\nAs in Figure 1 of the paper, the measured additive error sits well\nbelow the k²/r prediction and decreases as more rows are sampled.");
}
