//! Multi-tenant serving: one `Service`, several named resident datasets,
//! interleaved queries, per-dataset plan caches, lifecycle isolation, and
//! ticket-level control (deadlines, cancellation).
//!
//! Run with: `cargo run --release --example multi_tenant`

use dlra::prelude::*;
use dlra::util::Rng;
use std::time::Duration;

fn tenant_shares(
    n: usize,
    d: usize,
    rank: usize,
    servers: usize,
    seed: u64,
) -> Vec<dlra::linalg::Matrix> {
    let mut rng = Rng::new(seed);
    let global = dlra::data::noisy_low_rank(n, d, rank, 0.1, &mut rng);
    dlra::data::split_with_noise_shares(&global, servers, 0.4, &mut rng)
}

fn main() {
    let service = Service::new(ServiceConfig::default());

    // --- Two tenants with differently shaped datasets behind one pool.
    let alpha = service
        .load("tenant-alpha", tenant_shares(2000, 48, 5, 6, 11))
        .expect("load alpha");
    let beta = service
        .load("tenant-beta", tenant_shares(1200, 32, 4, 4, 22))
        .expect("load beta");
    for handle in [&alpha, &beta] {
        println!(
            "loaded '{}': {} servers, shape {:?}, epoch {}",
            handle.name(),
            handle.num_servers(),
            handle.shape(),
            handle.epoch()
        );
    }

    // --- Interleaved queries: each tenant submits a burst of Z queries
    // sharing a plan key (one preparation each, per-dataset cache) plus
    // one uniform query. All are concurrently in flight.
    let alpha_query = |r: usize| {
        Query::rank(5)
            .samples(r)
            .sampler(SamplerKind::Z(ZSamplerParams::default()))
            .seed(301)
            .build()
            .expect("valid query")
    };
    let beta_query = |r: usize| {
        Query::rank(4)
            .samples(r)
            .sampler(SamplerKind::Z(ZSamplerParams::default()))
            .seed(302)
            .build()
            .expect("valid query")
    };
    let tickets: Vec<(&str, Ticket)> = (0..4)
        .flat_map(|i| {
            [
                ("alpha", alpha.submit(&alpha_query(60 + 10 * i))),
                ("beta", beta.submit(&beta_query(40 + 10 * i))),
            ]
        })
        .collect();
    for (tenant, ticket) in tickets {
        let outcome = ticket.wait().expect("query served");
        let plan = match &outcome.plan {
            Some(p) if p.cache_hit => "plan: cache hit",
            Some(_) => "plan: prepared here",
            None => "unplanned",
        };
        println!(
            "{tenant}: rank-{} projection, {:>7} words, {plan}",
            outcome.output.projection.rank(),
            outcome.output.comm.total_words()
        );
    }
    if let (Some(sa), Some(sb)) = (alpha.plan_stats(), beta.plan_stats()) {
        println!(
            "plan caches — alpha: {} miss / {} hits; beta: {} miss / {} hits",
            sa.misses, sa.hits, sb.misses, sb.hits
        );
    }

    // --- Lifecycle isolation: reloading alpha bumps only alpha's epoch
    // and invalidates only alpha's plans; beta keeps serving from cache.
    service
        .reload("tenant-alpha", tenant_shares(2000, 48, 5, 6, 12))
        .expect("reload alpha");
    println!(
        "\nafter alpha reload: alpha epoch {}, beta epoch {} (beta plans cached: {})",
        alpha.epoch(),
        beta.epoch(),
        beta.plan_cache_len()
    );
    let outcome = beta.submit(&beta_query(40)).wait().expect("beta query");
    if let Some(plan) = outcome.plan {
        println!(
            "beta after alpha's reload: cache_hit = {} (its plans survived)",
            plan.cache_hit
        );
    }

    // --- Tickets: a deadline that expires resolves without running; a
    // cancelled queued query is dropped before execution.
    let expired = beta.submit(&beta_query(200)).deadline(Duration::ZERO);
    println!("expired deadline resolves to: {:?}", expired.wait().err());

    let cancelled = beta.submit(&beta_query(200));
    let dropped_before_execute = cancelled.cancel();
    println!(
        "cancelled query (dropped before execute: {dropped_before_execute}) resolves to: {:?}",
        cancelled.wait().err()
    );

    // --- Eviction: alpha leaves; its handle reports the eviction, beta
    // is untouched, and the name is free for a future load.
    service.evict("tenant-alpha").expect("evict alpha");
    println!(
        "\nafter eviction: alpha evicted = {}, submit resolves to: {:?}",
        alpha.is_evicted(),
        alpha.submit(&alpha_query(60)).wait().err()
    );
    println!(
        "beta still serving: {}",
        beta.submit(&beta_query(40)).wait().is_ok()
    );
}
