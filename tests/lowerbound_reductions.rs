//! Integration tests of the §VII lower-bound reductions at larger sizes
//! than the unit tests, plus cross-checks of their communication structure.

use dlra::lowerbounds::thm4::{exact_oracle as thm4_oracle, solve_linfty_via_pca};
use dlra::lowerbounds::thm6::{exact_rowspace_oracle, solve_disj_via_pca, DisjVariant};
use dlra::lowerbounds::thm8::{exact_oracle as thm8_oracle, solve_ghd_via_pca};
use dlra::lowerbounds::{GapHammingInstance, LinftyInstance, TwoDisjInstance};
use dlra::util::Rng;

#[test]
fn theorem4_reduction_is_reliable_over_many_instances() {
    let mut correct = 0;
    let trials = 20;
    for t in 0..trials {
        let mut rng = Rng::new(1000 + t);
        let planted = t % 2 == 0;
        let inst = LinftyInstance::generate(1024, 6, planted, &mut rng);
        let (far, _) = solve_linfty_via_pca(&inst, 8, 2, 2.0, &mut thm4_oracle);
        if far == planted {
            correct += 1;
        }
    }
    assert_eq!(correct, trials, "reduction failed on some instances");
}

#[test]
fn theorem4_oracle_calls_match_recursion_depth() {
    let mut rng = Rng::new(5);
    let inst = LinftyInstance::generate(1 << 12, 6, true, &mut rng);
    let d = 16;
    let (far, stats) = solve_linfty_via_pca(&inst, d, 2, 2.0, &mut thm4_oracle);
    assert!(far);
    // ⌈log_16(4096)⌉ = 3 rounds.
    assert!(stats.oracle_calls <= 4, "calls {}", stats.oracle_calls);
}

#[test]
fn theorem6_reduction_both_variants_large() {
    for variant in [DisjVariant::Max, DisjVariant::Huber] {
        for t in 0..6 {
            let mut rng = Rng::new(2000 + t);
            let intersecting = t % 2 == 0;
            let inst = TwoDisjInstance::generate(2048, intersecting, &mut rng);
            let (hit, stats) =
                solve_disj_via_pca(&inst, 16, 3, variant, &mut exact_rowspace_oracle);
            assert_eq!(hit, intersecting, "{variant:?} trial {t}");
            assert!(stats.side_words < 16, "side words {}", stats.side_words);
        }
    }
}

#[test]
fn theorem8_reduction_many_instances_and_eps() {
    // m = 1/ε²: sweep ε ∈ {1/8, 1/16, 1/24}.
    for &m in &[64usize, 256, 576] {
        for t in 0..6 {
            let mut rng = Rng::new(3000 + (m + t as usize) as u64);
            let positive = t % 2 == 0;
            let inst = GapHammingInstance::generate(m, positive, 1.0, &mut rng);
            let (got, stats) = solve_ghd_via_pca(&inst, 3, &mut thm8_oracle);
            assert_eq!(got, positive, "m={m} trial {t}");
            assert_eq!(stats.oracle_calls, 1);
        }
    }
}

#[test]
fn theorem8_gadget_scales_match_paper() {
    // The construction's singular values: √(‖x+y‖²ε²) vs √2 vs √(2(1+ε))/ε.
    let m = 256;
    let mut rng = Rng::new(9);
    let inst = GapHammingInstance::generate(m, true, 1.0, &mut rng);
    let (a1, a2) = dlra::lowerbounds::thm8::build_gadgets(&inst, 2);
    let a = a1.add(&a2).unwrap();
    let dec = dlra::linalg::svd(&a).unwrap();
    let eps = 1.0 / (m as f64).sqrt();
    // Largest singular value is the gadget column √(2(1+ε))/ε.
    let want_top = (2.0 * (1.0 + eps)).sqrt() / eps;
    assert!(
        (dec.s[0] - want_top).abs() < 1e-9,
        "σ₁ {} want {want_top}",
        dec.s[0]
    );
}

#[test]
fn theorem4_side_communication_in_bits() {
    // Re-account the reduction's side channel in bits via TwoPartyChannel:
    // per round Alice sends one column index (⌈log₂(d+k−1)⌉ bits), plus a
    // constant-size final check — exponentially less than the Ω̃(·) bound
    // the PCA oracle itself must pay.
    use dlra::comm::{Party, TwoPartyChannel};
    let mut rng = Rng::new(42);
    let m = 4096usize;
    let d = 16usize;
    let inst = LinftyInstance::generate(m, 8, true, &mut rng);
    let (far, stats) = solve_linfty_via_pca(&inst, d, 2, 2.0, &mut thm4_oracle);
    assert!(far);
    let mut ch = TwoPartyChannel::new();
    for _ in 0..stats.rounds {
        ch.send_index(Party::Alice, (d + 1) as u64);
    }
    ch.send_word(Party::Alice); // x value
    ch.send(Party::Bob, 1); // verdict bit
                            // Orders of magnitude below the m-scale lower bound.
    assert!(ch.total_bits() < 128, "side bits {}", ch.total_bits());
    assert!((m as u64) / ch.total_bits() > 30);
}
