//! The service façade's acceptance suite:
//!
//! * A [`Service`] hosting two named datasets serves **interleaved
//!   concurrent queries** whose outputs and per-query ledgers are
//!   bit-identical to single-`Runtime` runs of the same queries.
//! * `reload`/`evict` of one dataset provably leaves the other's cached
//!   plans live (stats-asserted per dataset) and never touches its
//!   in-flight queries.
//! * Cancellation before/after execution start, deadline expiry (the
//!   query resolves without running), `wait_timeout`.
//! * The typed builder rejects malformed queries at construction; the
//!   dataset-shape check resolves eagerly at submission.
//!
//! Like the equivalence suite, CI runs this file under `DLRA_PLAN_CACHE=0`
//! and `=32`, so every path is proven planner-on and planner-off; the
//! plan-stats assertions guard on planning being enabled.

use dlra::prelude::*;
use dlra::runtime::{Runtime, RuntimeConfig, ServiceConfig, Substrate, Ticket};
use dlra::util::Rng;
use std::time::Duration;

fn shares(s: usize, n: usize, d: usize, k: usize, seed: u64) -> Vec<dlra::linalg::Matrix> {
    let mut rng = Rng::new(seed);
    let global = dlra::data::noisy_low_rank(n, d, k, 0.1, &mut rng);
    dlra::data::split_with_noise_shares(&global, s, 0.3, &mut rng)
}

/// Executor/substrate pinned; plan-cache capacity from the environment
/// (`DLRA_PLAN_CACHE`) and admission bound from `DLRA_MAX_QUEUE`, exactly
/// like the equivalence suite, so CI proves the façade planner-on and
/// planner-off — and with shedding forced on and off.
fn service_config(executors: usize) -> ServiceConfig {
    ServiceConfig {
        executors,
        substrate: Substrate::Threaded,
        ..Default::default()
    }
}

/// Explicitly unbounded: structural tests that park real queries behind
/// blockers opt out of the env-driven admission bound CI applies to the
/// rest of the suite (a shed blocker would never block anything).
fn unbounded_config(executors: usize) -> ServiceConfig {
    ServiceConfig {
        max_queue_depth: None,
        memory_budget: None,
        ..service_config(executors)
    }
}

/// Submits until admitted: under a forced admission bound
/// (`DLRA_MAX_QUEUE`), a shed ticket is dropped and the submission retried
/// once the pool drains. Shed queries never touch the planner, so the
/// suite's plan-stats assertions hold unchanged.
fn submit_admitted(handle: &DatasetHandle, query: &Query) -> Ticket {
    loop {
        let ticket = handle.submit(query);
        if !ticket.shed() {
            return ticket;
        }
        std::thread::yield_now();
    }
}

fn z_query(k: usize, r: usize, seed: u64) -> Query {
    Query::rank(k)
        .samples(r)
        .sampler(SamplerKind::Z(ZSamplerParams::default()))
        .seed(seed)
        .build()
        .expect("valid query")
}

fn uniform_query(k: usize, r: usize, seed: u64) -> Query {
    Query::rank(k)
        .samples(r)
        .sampler(SamplerKind::Uniform)
        .seed(seed)
        .build()
        .expect("valid query")
}

/// The tentpole acceptance test: two resident datasets, interleaved
/// concurrent queries, per-dataset plan caches — outputs and per-query
/// ledgers bit-identical to single-`Runtime` runs of the same queries.
#[test]
fn two_datasets_interleaved_match_single_runtime_runs_bit_for_bit() {
    let parts_a = shares(3, 120, 10, 3, 101);
    let parts_b = shares(4, 96, 8, 2, 202);
    let config = service_config(4);

    let service = Service::new(config.clone());
    let a = service.load("tenant-a", parts_a.clone()).unwrap();
    let b = service.load("tenant-b", parts_b.clone()).unwrap();
    assert_eq!(a.shape(), (120, 10));
    assert_eq!(b.shape(), (96, 8));

    // Four Z queries per dataset sharing one plan key, plus a uniform one
    // each (which bypasses the planner).
    let queries_a: Vec<Query> = (0..4)
        .map(|i| z_query(1 + i % 3, 20 + 5 * i, 7))
        .chain([uniform_query(2, 15, 8)])
        .collect();
    let queries_b: Vec<Query> = (0..4)
        .map(|i| z_query(1 + i % 2, 18 + 4 * i, 9))
        .chain([uniform_query(1, 12, 10)])
        .collect();

    // Interleave submissions so both tenants' queries are concurrently in
    // flight on the shared executor pool.
    let mut tickets: Vec<(usize, bool, Ticket)> = Vec::new();
    for i in 0..queries_a.len().max(queries_b.len()) {
        if let Some(q) = queries_a.get(i) {
            tickets.push((i, true, submit_admitted(&a, q)));
        }
        if let Some(q) = queries_b.get(i) {
            tickets.push((i, false, submit_admitted(&b, q)));
        }
    }

    // Reference: single-dataset runtimes with the same plan-cache setting,
    // one per tenant, answering the same queries.
    let runtime_config = |executors| RuntimeConfig {
        executors,
        substrate: config.substrate,
        plan_cache: config.plan_cache,
        metrics: config.metrics,
        topology: config.topology,
        // The references answer every query; only the service under test
        // runs with the (possibly env-forced) admission bound.
        max_queue_depth: None,
        memory_budget: None,
    };
    let runtime_a = Runtime::new(parts_a, runtime_config(4)).unwrap();
    let runtime_b = Runtime::new(parts_b, runtime_config(4)).unwrap();

    for (i, is_a, ticket) in tickets {
        let got = ticket.wait().expect("service query failed");
        let (runtime, queries) = if is_a {
            (&runtime_a, &queries_a)
        } else {
            (&runtime_b, &queries_b)
        };
        let want = runtime
            .submit(queries[i].request().clone())
            .wait_outcome()
            .expect("runtime query failed");
        let tenant = if is_a { "a" } else { "b" };
        assert_eq!(
            got.output.projection.basis().as_slice(),
            want.output.projection.basis().as_slice(),
            "projection diverged (tenant {tenant}, query {i})"
        );
        assert_eq!(got.output.rows, want.output.rows, "tenant {tenant} q{i}");
        assert_eq!(
            got.output.comm, want.output.comm,
            "per-query ledger diverged (tenant {tenant}, query {i})"
        );
        assert_eq!(
            got.plan.is_some(),
            want.plan.is_some(),
            "planner provenance diverged (tenant {tenant}, query {i})"
        );
    }

    // Per-dataset plan caches: each tenant prepared its own single key
    // exactly once (4 Z queries → 1 miss + 3 hits), independently.
    if let (Some(sa), Some(sb)) = (a.plan_stats(), b.plan_stats()) {
        assert_eq!((sa.misses, sa.hits), (1, 3), "tenant a cache");
        assert_eq!((sb.misses, sb.hits), (1, 3), "tenant b cache");
        assert_eq!(a.plan_cache_len(), 1);
        assert_eq!(b.plan_cache_len(), 1);
    }
}

/// Reload and evict of dataset A never invalidate B's cached plans or
/// in-flight queries — stats-asserted per dataset.
#[test]
fn reload_and_evict_of_one_dataset_leave_the_other_live() {
    let parts_a = shares(3, 100, 10, 3, 31);
    let parts_a2 = shares(3, 100, 10, 3, 32);
    let parts_b = shares(2, 80, 8, 2, 33);
    let service = Service::new(service_config(2));
    let a = service.load("a", parts_a).unwrap();
    let b = service.load("b", parts_b.clone()).unwrap();

    let qa = z_query(2, 20, 5);
    let qb = z_query(2, 22, 6);

    // Warm both tenants' caches: one miss then one hit each.
    a.submit(&qa).wait().unwrap();
    a.submit(&qa).wait().unwrap();
    let before_b = b.submit(&qb).wait().unwrap();
    b.submit(&qb).wait().unwrap();
    let planning = a.plan_stats().is_some();
    if planning {
        assert_eq!(
            (a.plan_stats().unwrap().misses, a.plan_stats().unwrap().hits),
            (1, 1)
        );
        assert_eq!(
            (b.plan_stats().unwrap().misses, b.plan_stats().unwrap().hits),
            (1, 1)
        );
    }

    // Submit a B query, then reload A while it is in flight: the B query
    // must complete against its own (untouched) data.
    let in_flight_b = b.submit(&qb);
    service.reload("a", parts_a2.clone()).unwrap();
    let during = in_flight_b
        .wait()
        .expect("B in-flight query survived A's reload");
    assert_eq!(
        during.output.projection.basis().as_slice(),
        before_b.output.projection.basis().as_slice(),
        "A's reload changed B's answer"
    );

    assert_eq!(a.epoch(), 1, "A reloaded");
    assert_eq!(b.epoch(), 0, "B's epoch must not move on A's reload");
    if planning {
        // A's partition was invalidated; B's plans stay live and keep
        // serving hits with no new misses.
        let sa = a.plan_stats().unwrap();
        assert_eq!(a.plan_cache_len(), 0, "A's stale plans must drop");
        assert!(sa.invalidations >= 1, "A must record the invalidation");
        let sb0 = b.plan_stats().unwrap();
        assert_eq!(b.plan_cache_len(), 1, "B's plan must stay cached");
        assert_eq!(sb0.invalidations, 0, "B must see no invalidation");
        let after_b = b.submit(&qb).wait().unwrap();
        let sb1 = b.plan_stats().unwrap();
        assert_eq!(sb1.misses, sb0.misses, "B re-prepared after A's reload");
        assert_eq!(sb1.hits, sb0.hits + 1, "B's cached plan must serve a hit");
        assert!(after_b.plan.unwrap().cache_hit);
        assert_eq!(
            after_b.output.projection.basis().as_slice(),
            before_b.output.projection.basis().as_slice()
        );
    }

    // A answers from the new data (and re-prepares if planning). The
    // reference model is built under the service's (possibly env-driven)
    // topology so the ledger comparison holds when CI plumbs
    // `DLRA_TOPOLOGY`.
    let reloaded_a = a.submit(&qa).wait().unwrap();
    let topology = ServiceConfig::default().topology;
    let mut direct = PartitionModel::with_substrate(parts_a2, EntryFunction::Identity, |l| {
        dlra::comm::Cluster::with_topology(l, topology)
    })
    .unwrap();
    let want = run_algorithm1(&mut direct, &qa.request().cfg).unwrap();
    assert_eq!(
        reloaded_a.output.projection.basis().as_slice(),
        want.projection.basis().as_slice()
    );
    assert_eq!(reloaded_a.output.comm, want.comm);

    // Evict A: its handle reports eviction, B keeps serving from cache.
    service.evict("a").unwrap();
    assert!(a.is_evicted());
    assert!(!b.is_evicted());
    assert!(matches!(
        a.submit(&qa).wait(),
        Err(ServiceError::DatasetEvicted { dataset }) if dataset == "a"
    ));
    let survivor = b.submit(&qb).wait().unwrap();
    assert_eq!(
        survivor.output.projection.basis().as_slice(),
        before_b.output.projection.basis().as_slice(),
        "A's eviction changed B's answer"
    );
    if planning {
        assert_eq!(b.plan_cache_len(), 1, "B's plan must survive A's eviction");
        assert_eq!(
            b.plan_stats().unwrap().invalidations,
            0,
            "B must never be invalidated by A's lifecycle"
        );
    }
    // B's payload is still the storage the caller loaded (copy-on-write).
    for (mine, theirs) in parts_b.iter().zip(b.resident().iter()) {
        assert!(mine.shares_storage(theirs));
    }
}

/// Keeps a single executor busy so that queries submitted behind the
/// blockers sit in the queue deterministically.
fn submit_blockers(handle: &DatasetHandle, count: usize) -> Vec<Ticket> {
    let blockers: Vec<Ticket> = (0..count)
        .map(|i| handle.submit(&z_query(4, 120, 1000 + i as u64)))
        .collect();
    // Wait until the pool has actually started chewing on the first one.
    while !blockers[0].started() {
        std::thread::yield_now();
    }
    blockers
}

#[test]
fn cancellation_before_and_after_execution_start() {
    let service = Service::new(unbounded_config(1));
    let handle = service.load("d", shares(2, 512, 16, 4, 77)).unwrap();
    let blockers = submit_blockers(&handle, 3);

    // Cancel while queued: drop-before-execute is guaranteed.
    let victim = handle.submit(&uniform_query(2, 20, 2));
    assert!(
        victim.cancel(),
        "cancel before execution must report drop-before-execute"
    );
    assert!(matches!(victim.wait(), Err(ServiceError::Cancelled)));

    // The blockers are untouched by the cancellation.
    for blocker in blockers {
        assert!(blocker.wait().is_ok());
    }

    // Cancel after the query already resolved: too late, typed as such.
    let done = handle.submit(&uniform_query(2, 20, 3));
    let result = loop {
        if let Some(result) = done.try_wait() {
            break result;
        }
        std::thread::yield_now();
    };
    assert!(result.is_ok());
    assert!(done.started());
    assert!(
        !done.cancel(),
        "cancel after execution must report it was too late"
    );
}

#[test]
fn deadline_expiry_resolves_without_running() {
    let service = Service::new(unbounded_config(1));
    let handle = service.load("d", shares(2, 512, 16, 4, 88)).unwrap();

    // A deadline carried by the builder is seeded into the ticket before
    // dispatch, so even an idle executor observes it as already expired:
    // typed error, the protocol never runs.
    let dead = handle.submit(
        &Query::rank(2)
            .samples(25)
            .sampler(SamplerKind::Uniform)
            .seed(556)
            .deadline(Duration::ZERO)
            .build()
            .unwrap(),
    );
    assert!(matches!(dead.wait(), Err(ServiceError::Deadline)));

    // A post-submission `Ticket::deadline` needs the executor to still be
    // busy when it lands — park the queue behind blockers so the store is
    // deterministically ordered before the pop. The expired Z query's key
    // must never reach the plan cache (planning enabled): the blockers
    // account for every cached plan.
    let blockers = submit_blockers(&handle, 2);
    let dead = handle.submit(&z_query(2, 30, 555)).deadline(Duration::ZERO);
    assert!(matches!(dead.wait(), Err(ServiceError::Deadline)));
    for blocker in blockers {
        assert!(blocker.wait().is_ok());
    }
    if handle.plan_stats().is_some() {
        assert_eq!(
            handle.plan_cache_len(),
            2,
            "an expired query must never prepare a plan (only the 2 blockers may)"
        );
    }

    // A generous deadline never fires.
    let alive = handle
        .submit(&uniform_query(2, 25, 557))
        .deadline(Duration::from_secs(120));
    assert!(alive.wait().is_ok());
}

/// A cancellation issued *after* execution has started interrupts the
/// protocol between boosting repetitions — before this release the run
/// always completed and the cancellation was reported as "too late".
#[test]
fn cancellation_interrupts_a_running_query() {
    let service = Service::new(service_config(1));
    let handle = service.load("d", shares(2, 512, 16, 4, 121)).unwrap();

    // Heavily boosted uniform query: long-running, planner-bypassing, so
    // the only place the stop signal can be observed is inside the
    // boosting loop itself.
    let long = Query::rank(3)
        .samples(60)
        .sampler(SamplerKind::Uniform)
        .boosted(50_000)
        .seed(9)
        .build()
        .unwrap();
    let ticket = handle.submit(&long);
    while !ticket.started() {
        std::thread::yield_now();
    }
    ticket.cancel();
    assert!(
        matches!(ticket.wait(), Err(ServiceError::Cancelled)),
        "a cancel observed mid-run must abandon the protocol"
    );
}

/// A deadline that expires *while the protocol is running* interrupts it
/// promptly with the typed error — enforcement is no longer confined to
/// the pre-dispatch and prepare→execute checkpoints.
#[test]
fn deadline_interrupts_a_running_query() {
    let service = Service::new(service_config(1));
    let handle = service.load("d", shares(2, 512, 16, 4, 131)).unwrap();

    let ticket = handle
        .submit(
            &Query::rank(3)
                .samples(60)
                .sampler(SamplerKind::Uniform)
                .boosted(50_000)
                .seed(10)
                .build()
                .unwrap(),
        )
        .deadline(Duration::from_millis(25));
    // The executor pool is idle, so the query starts well before the
    // deadline: passing the pre-dispatch checkpoint proves the expiry
    // below was caught inside the run.
    while !ticket.started() {
        std::thread::yield_now();
    }
    assert!(
        matches!(ticket.wait(), Err(ServiceError::Deadline)),
        "a deadline expiring mid-run must abandon the protocol"
    );
}

#[test]
fn wait_timeout_returns_the_ticket_on_timeout() {
    let service = Service::new(unbounded_config(1));
    let handle = service.load("d", shares(2, 512, 16, 4, 99)).unwrap();
    let _blockers = submit_blockers(&handle, 3);

    // Queued behind the blockers: a tiny wait times out and hands the
    // ticket back; the caller can then cancel it — the serving pattern
    // "wait 1 ms, then give up".
    let slow = handle.submit(&uniform_query(2, 20, 4));
    match slow.wait_timeout(Duration::from_millis(1)) {
        Ok(result) => {
            // Single-core schedulers may legitimately finish everything
            // first; then the result must simply be valid.
            assert!(result.is_ok());
        }
        Err(ticket) => {
            ticket.cancel();
            assert!(matches!(
                ticket.wait(),
                Err(ServiceError::Cancelled) | Ok(_)
            ));
        }
    }

    // A completed query resolves within any reasonable timeout.
    let fast = handle.submit(&uniform_query(1, 10, 5));
    match fast.wait_timeout(Duration::from_secs(120)) {
        Ok(result) => assert!(result.is_ok()),
        Err(_) => panic!("resolved query must not time out"),
    }
}

#[test]
fn typed_builder_and_shape_validation() {
    assert_eq!(Query::rank(0).build().unwrap_err(), QueryError::ZeroRank);
    assert_eq!(
        Query::rank(2).samples(0).build().unwrap_err(),
        QueryError::ZeroSamples
    );
    assert_eq!(
        Query::rank(2).boosted(0).build().unwrap_err(),
        QueryError::ZeroBoost
    );
    assert!(matches!(
        Query::rank(2)
            .function(EntryFunction::Max)
            .sampler(SamplerKind::Z(ZSamplerParams::default()))
            .build(),
        Err(QueryError::UnsupportedFunction { .. })
    ));

    // The dataset-dependent check resolves eagerly at submission.
    let service = Service::new(service_config(1));
    let handle = service.load("d", shares(2, 40, 6, 2, 11)).unwrap();
    let too_wide = uniform_query(7, 10, 1);
    assert!(matches!(
        handle.submit(&too_wide).wait(),
        Err(ServiceError::InvalidQuery(
            QueryError::RankExceedsDimension { k: 7, d: 6 }
        ))
    ));

    // A boosted, non-identity query built through the builder runs fine.
    let fancy = Query::rank(2)
        .samples(18)
        .function(EntryFunction::Huber { k: 1.5 })
        .sampler(SamplerKind::Z(ZSamplerParams::default()))
        .boosted(2)
        .seed(42)
        .build()
        .unwrap();
    let out = handle.submit(&fancy).wait().unwrap();
    assert_eq!(out.output.projection.dim(), 6);
    assert!(out.plan.is_none(), "boosted queries bypass the planner");
}

/// Bounded admission: with the pool saturated up to the configured bound,
/// the next submission sheds — a typed, retryable `Overloaded` resolved at
/// submission, visible in the pressure snapshot and both metric exports —
/// and admission reopens as soon as the pool drains.
#[test]
fn overload_sheds_with_typed_error_and_reopens_after_drain() {
    let service = Service::new(ServiceConfig {
        max_queue_depth: Some(2),
        memory_budget: None,
        ..service_config(1)
    });
    let handle = service.load("d", shares(2, 512, 16, 4, 155)).unwrap();
    // Fill the bound exactly: one executing, one queued.
    let blockers = submit_blockers(&handle, 2);

    let shed = handle.submit(&uniform_query(2, 20, 1));
    assert!(shed.shed(), "the submission over the bound must shed");
    match shed.wait() {
        Err(err @ ServiceError::Overloaded { .. }) => {
            assert!(err.is_retryable());
            assert!(!err.is_caller_error());
            if let ServiceError::Overloaded { queue_depth, limit } = err {
                assert_eq!((queue_depth, limit), (2, 2));
            }
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    let snap = service.pressure();
    assert_eq!(snap.max_queue_depth, Some(2));
    assert!(snap.rejected_overload >= 1);

    for blocker in blockers {
        assert!(blocker.wait().is_ok(), "blockers are untouched by the shed");
    }
    // The pool drained; admission reopens.
    let retry = submit_admitted(&handle, &uniform_query(2, 20, 2));
    assert!(!retry.shed());
    assert!(retry.wait().is_ok());
    assert_eq!(
        service.pressure().admitted,
        0,
        "every admission must be released at resolution"
    );

    // The shed shows up per dataset and in both exports.
    let metrics = service.metrics().expect("metrics are on");
    let d = &metrics.datasets[0];
    assert!(d.rejected_overload >= 1);
    assert!(d.rejected >= d.rejected_overload, "overload is a subset");
    assert!(metrics.to_json().contains("\"rejected_overload\""));
    assert!(metrics
        .to_prometheus()
        .contains("dlra_service_rejected_overload_total"));
}

/// Memory quotas: a load pushing the resident total over the budget evicts
/// the least-recently-dispatched dataset — unless that dataset is pinned
/// by an in-flight query, in which case the next-oldest unpinned tenant
/// goes instead, and the pinned query completes untouched.
#[test]
fn memory_quota_evicts_lru_and_respects_pins() {
    // shares(2, 64, 8, ..) = 2 servers × 64×8 × 8 bytes = 8192 bytes.
    let small = |seed| shares(2, 64, 8, 2, seed);

    // LRU across tenants: a (oldest) goes when c arrives over budget.
    let service = Service::new(ServiceConfig {
        memory_budget: Some(20_000),
        max_queue_depth: None,
        ..service_config(1)
    });
    let a = service.load("a", small(41)).unwrap();
    let b = service.load("b", small(42)).unwrap();
    assert_eq!(service.pressure().resident_bytes, 16_384);
    let c = service.load("c", small(43)).unwrap();
    assert!(a.is_evicted(), "the LRU tenant must be quota-evicted");
    assert!(!b.is_evicted() && !c.is_evicted());
    assert!(service.dataset("a").is_none());
    let snap = service.pressure();
    assert_eq!(snap.resident_bytes, 16_384);
    assert_eq!(snap.evicted_under_pressure, 1);
    assert!(matches!(
        a.submit(&uniform_query(2, 10, 1)).wait(),
        Err(ServiceError::DatasetEvicted { dataset }) if dataset == "a"
    ));
    assert!(b.submit(&uniform_query(2, 10, 2)).wait().is_ok());

    // Pinning: the oldest tenant has a query in flight, so the sweep
    // skips it and evicts the next-oldest instead.
    let service = Service::new(ServiceConfig {
        memory_budget: Some(140_000),
        max_queue_depth: None,
        ..service_config(1)
    });
    // shares(2, 512, 16, ..) = 2 × 512×16 × 8 = 131072 bytes.
    let a = service.load("a", shares(2, 512, 16, 4, 51)).unwrap();
    let b = service.load("b", small(52)).unwrap();
    // Long query pins `a` (and bumps its tick); reload bumps `b` above it,
    // so `a` is both LRU *and* pinned when `c` arrives.
    let pinned = submit_blockers(&a, 1).pop().unwrap();
    service.reload("b", small(53)).unwrap();
    let c = service.load("c", small(54)).unwrap();
    assert!(
        !a.is_evicted(),
        "a dataset with a query in flight must never be evicted"
    );
    assert!(
        b.is_evicted(),
        "the next-oldest unpinned tenant goes instead"
    );
    assert!(!c.is_evicted());
    assert!(
        pinned.wait().is_ok(),
        "the pinned query completes against its own payload"
    );
    assert_eq!(service.pressure().resident_bytes, 131_072 + 8_192);
    assert_eq!(service.pressure().evicted_under_pressure, 1);

    // Drain everything: byte accounting returns to zero.
    service.evict("a").unwrap();
    service.evict("c").unwrap();
    let end = service.pressure();
    assert_eq!(end.resident_bytes, 0);
    assert_eq!(end.admitted, 0);
}

/// Regression: a caller that times out in `wait_timeout` and then cancels
/// races the executor. Whatever the interleaving, `cancel() == true` must
/// imply the ticket resolves to exactly `Err(Cancelled)` — never a
/// delivered result and never `RuntimeUnavailable`.
#[test]
fn cancel_after_timeout_resolves_to_exactly_one_terminal_state() {
    let service = Service::new(unbounded_config(1));
    let handle = service.load("d", shares(2, 512, 16, 4, 144)).unwrap();
    for round in 0u64..24 {
        let ticket = handle.submit(&uniform_query(2, 18, 600 + round));
        // Sweep the timeout across rounds so the cancel lands at varied
        // points of the query lifecycle.
        let ticket = match ticket.wait_timeout(Duration::from_micros(50 * round)) {
            Ok(result) => {
                assert!(result.is_ok(), "round {round}");
                continue;
            }
            Err(ticket) => ticket,
        };
        let claimed = ticket.cancel();
        let outcome = ticket.wait();
        if claimed {
            assert!(
                matches!(outcome, Err(ServiceError::Cancelled)),
                "cancel() == true must resolve to Cancelled (round {round})"
            );
        } else {
            // Too late to drop it: the executor delivers its own outcome
            // (possibly honoring the cancel request mid-run).
            assert!(
                matches!(outcome, Ok(_) | Err(ServiceError::Cancelled)),
                "round {round}"
            );
        }
    }
}

#[test]
fn shutdown_and_dataset_registry_errors_are_typed() {
    let mut service = Service::new(service_config(1));
    let handle = service.load("d", shares(2, 30, 6, 2, 13)).unwrap();
    assert!(matches!(
        service.load("d", shares(2, 30, 6, 2, 14)),
        Err(ServiceError::DatasetExists(_))
    ));
    assert!(matches!(
        service.reload("ghost", shares(2, 30, 6, 2, 14)),
        Err(ServiceError::UnknownDataset(_))
    ));
    assert!(matches!(
        service.evict("ghost"),
        Err(ServiceError::UnknownDataset(_))
    ));
    assert!(matches!(
        service.load("bad", vec![]),
        Err(ServiceError::InvalidDataset(_))
    ));

    let mut names = service.dataset_names();
    names.sort();
    assert_eq!(names, ["d"]);
    assert!(service.dataset("d").is_some());
    assert!(service.dataset("ghost").is_none());

    service.shutdown();
    assert!(matches!(
        handle.submit(&uniform_query(2, 10, 1)).wait(),
        Err(ServiceError::RuntimeUnavailable(_))
    ));
}
