//! Quality study of the random Fourier feature application (§VI-A):
//! kernel approximation vs feature dimension, row-norm concentration, and
//! PCA error decay with the sample count.

use dlra::core::apps::rff::{run_rff_pca, RffMap};
use dlra::prelude::*;
use dlra::util::Rng;

fn base_data(n: usize, m: usize, seed: u64) -> dlra::linalg::Matrix {
    let mut rng = Rng::new(seed);
    dlra::data::clustered_points(n, m, 5, &[2.0, 1.5, 1.0, 0.7, 0.4], 0.3, &mut rng)
}

#[test]
fn kernel_error_decays_with_feature_dim() {
    let mut rng = Rng::new(1);
    let x: Vec<f64> = (0..8).map(|_| rng.gaussian() * 0.7).collect();
    let y: Vec<f64> = (0..8).map(|_| rng.gaussian() * 0.7).collect();
    let dist2: f64 = x
        .iter()
        .zip(&y)
        .map(|(a, b): (&f64, &f64)| (a - b) * (a - b))
        .sum();
    let truth = (-dist2 / 2.0).exp();
    let err_at = |d: usize| -> f64 {
        // Average over independent maps to smooth the variance.
        (0..8)
            .map(|s| {
                let map = RffMap::new(8, d, 1.0, 100 + s);
                (map.kernel_estimate(&x, &y) - truth).abs()
            })
            .sum::<f64>()
            / 8.0
    };
    let coarse = err_at(32);
    let fine = err_at(2048);
    // Monte-Carlo rate: error ∝ 1/√d → 8× fewer features ≈ 8× error at
    // these dims; require at least a 2.5× improvement.
    assert!(
        fine < coarse / 2.5,
        "err(2048) = {fine} not ≪ err(32) = {coarse}"
    );
}

#[test]
fn row_norm_concentration_justifies_uniform_sampling() {
    // The §VI-A argument: ‖Aᵢ‖² = Θ(d) for every row. Measure the spread.
    let raw = base_data(200, 10, 2);
    let map = RffMap::new(10, 512, 1.0, 3);
    let feats = map.expand_matrix(&raw);
    let norms: Vec<f64> = (0..feats.rows()).map(|i| feats.row_norm_sq(i)).collect();
    let mean = norms.iter().sum::<f64>() / norms.len() as f64;
    let max = norms.iter().cloned().fold(0.0, f64::max);
    let min = norms.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!((mean - 512.0).abs() < 40.0, "mean {mean}");
    assert!(max / min < 1.8, "spread {min}..{max}");
}

#[test]
fn pca_error_decreases_with_r() {
    let raw = base_data(500, 10, 4);
    let mut rng = Rng::new(5);
    let parts = dlra::data::split_additively(&raw, 4, &mut rng);
    let mut model = PartitionModel::new(parts, EntryFunction::Identity).unwrap();
    let map = RffMap::new(10, 96, 1.0, 6);
    let truth = map.expand_matrix(&model.global_matrix());
    let k = 6;
    let err_at = |r: usize, model: &mut PartitionModel| -> f64 {
        // Average 3 runs.
        (0..3)
            .map(|s| {
                let out = run_rff_pca(model, &map, k, r, 900 + s + r as u64).unwrap();
                evaluate_projection(&truth, &out.projection, k)
                    .unwrap()
                    .additive_error
            })
            .sum::<f64>()
            / 3.0
    };
    let coarse = err_at(25, &mut model);
    let fine = err_at(400, &mut model);
    assert!(
        fine < coarse / 2.0,
        "err(r=400) = {fine} not ≪ err(r=25) = {coarse}"
    );
}

#[test]
fn bandwidth_controls_kernel_locality() {
    // Smaller σ → narrower kernel → estimates for distant points ~0.
    let x = vec![0.0; 6];
    let far: Vec<f64> = vec![2.0; 6];
    let narrow = RffMap::new(6, 2048, 0.5, 7);
    let wide = RffMap::new(6, 2048, 4.0, 8);
    let kn = narrow.kernel_estimate(&x, &far);
    let kw = wide.kernel_estimate(&x, &far);
    assert!(kn.abs() < 0.05, "narrow kernel not local: {kn}");
    assert!(kw > 0.4, "wide kernel too local: {kw}");
}
