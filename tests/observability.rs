//! Observability acceptance suite: the metrics registry and the tracer
//! observe queries **without perturbing them**.
//!
//! * Ledger-derived comm metrics are bit-identical across repeated runs,
//!   kernel thread counts (1 vs 2), and plan-cache on/off (total words;
//!   the prepare/execute *split* legitimately differs — a warm cache pays
//!   no preparation, an unplanned run has no prepare phase at all).
//! * Query outputs and per-query ledgers are bit-identical with tracing
//!   enabled and disabled.
//! * The latency histogram's bucket boundaries are fixed powers of two —
//!   quantiles are deterministic bucket upper bounds, never interpolated.
//! * A metrics-disabled service reports `None`; an enabled one exports
//!   coherent JSON and Prometheus text.

use dlra::obs::metrics::LATENCY_BUCKET_BOUNDS_MICROS;
use dlra::obs::trace;
use dlra::prelude::*;
use dlra::runtime::{ServiceConfig, Substrate};
use dlra::util::Rng;

fn shares(s: usize, n: usize, d: usize, k: usize, seed: u64) -> Vec<dlra::linalg::Matrix> {
    let mut rng = Rng::new(seed);
    let global = dlra::data::noisy_low_rank(n, d, k, 0.1, &mut rng);
    dlra::data::split_with_noise_shares(&global, s, 0.3, &mut rng)
}

fn config(plan_cache: usize, metrics: bool) -> ServiceConfig {
    ServiceConfig {
        executors: 2,
        substrate: Substrate::Threaded,
        plan_cache,
        metrics,
        ..Default::default()
    }
}

fn z_query(k: usize, r: usize, seed: u64) -> Query {
    Query::rank(k)
        .samples(r)
        .sampler(SamplerKind::Z(ZSamplerParams::default()))
        .seed(seed)
        .build()
        .expect("valid query")
}

/// Runs the reference workload (two repeated plan keys + one uniform
/// query) and returns the per-query outputs plus the dataset's metric
/// snapshot.
fn run_workload(
    cfg: ServiceConfig,
) -> (
    Vec<QueryOutcome>,
    Option<dlra::obs::metrics::DatasetMetricsSnapshot>,
) {
    let mut service = Service::new(cfg);
    let handle = service.load("tenant", shares(3, 90, 14, 4, 7)).unwrap();
    let queries = [
        z_query(3, 30, 11),
        z_query(3, 30, 11), // same plan key: a hit when caching is on
        z_query(4, 36, 13),
        Query::rank(2)
            .samples(20)
            .sampler(SamplerKind::Uniform)
            .seed(5)
            .build()
            .unwrap(),
    ];
    let tickets: Vec<Ticket> = queries.iter().map(|q| handle.submit(q)).collect();
    let outcomes: Vec<QueryOutcome> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
    let snapshot = service
        .metrics()
        .and_then(|m| m.datasets.into_iter().find(|d| d.name == "tenant"));
    service.shutdown();
    (outcomes, snapshot)
}

#[test]
fn latency_bucket_bounds_are_fixed_powers_of_two() {
    assert_eq!(LATENCY_BUCKET_BOUNDS_MICROS.len(), 25);
    for (i, &bound) in LATENCY_BUCKET_BOUNDS_MICROS.iter().enumerate() {
        assert_eq!(bound, 1u64 << i, "bucket {i} must be 2^{i} µs");
    }
    // 2^24 µs ≈ 16.8 s: the last finite bound; anything slower lands in
    // the overflow bucket and reports its quantile as u64::MAX.
    assert_eq!(*LATENCY_BUCKET_BOUNDS_MICROS.last().unwrap(), 16_777_216);
}

#[test]
fn comm_metrics_identical_across_repeated_runs() {
    let (out_a, snap_a) = run_workload(config(8, true));
    let (out_b, snap_b) = run_workload(config(8, true));
    let (snap_a, snap_b) = (snap_a.unwrap(), snap_b.unwrap());
    assert_eq!(snap_a.comm, snap_b.comm, "folded comm words must not vary");
    assert_eq!(snap_a.prepare_comm, snap_b.prepare_comm);
    assert_eq!(snap_a.execute_comm, snap_b.execute_comm);
    for (a, b) in out_a.iter().zip(&out_b) {
        assert_eq!(a.output.comm, b.output.comm);
        assert_eq!(a.output.projection, b.output.projection);
    }
}

#[test]
fn comm_metrics_identical_across_thread_counts() {
    let before = dlra::linalg::threads();
    dlra::linalg::set_threads(1);
    let (out_1, snap_1) = run_workload(config(8, true));
    dlra::linalg::set_threads(2);
    let (out_2, snap_2) = run_workload(config(8, true));
    dlra::linalg::set_threads(before);
    let (snap_1, snap_2) = (snap_1.unwrap(), snap_2.unwrap());
    assert_eq!(snap_1.comm, snap_2.comm);
    assert_eq!(snap_1.prepare_comm, snap_2.prepare_comm);
    assert_eq!(snap_1.execute_comm, snap_2.execute_comm);
    for (a, b) in out_1.iter().zip(&out_2) {
        assert_eq!(a.output.comm, b.output.comm);
        assert_eq!(a.output.projection, b.output.projection);
    }
}

#[test]
fn total_comm_identical_plan_cache_on_and_off() {
    let (out_on, snap_on) = run_workload(config(8, true));
    let (out_off, snap_off) = run_workload(config(0, true));
    // The folded per-query ledgers — and therefore the dataset's total
    // comm counter — are the planner's core guarantee: identical whether
    // a preparation was shared, cached, or rerun per query.
    for (a, b) in out_on.iter().zip(&out_off) {
        assert_eq!(a.output.comm, b.output.comm);
        assert_eq!(a.output.projection, b.output.projection);
    }
    let (snap_on, snap_off) = (snap_on.unwrap(), snap_off.unwrap());
    assert_eq!(snap_on.comm, snap_off.comm);
    // The split differs by design: with the cache on, the repeated key's
    // second query pays no physical preparation.
    assert_eq!(snap_on.plan_hits, 1);
    assert!(snap_off.plan_cache.is_none());
}

#[test]
fn tracing_does_not_perturb_results() {
    let (out_off, snap_off) = run_workload(config(8, true));
    let path = std::env::temp_dir().join("dlra_obs_test_trace.json");
    trace::enable(&path);
    let (out_on, snap_on) = run_workload(config(8, true));
    trace::disable();
    for (a, b) in out_off.iter().zip(&out_on) {
        assert_eq!(a.output.comm, b.output.comm);
        assert_eq!(a.output.projection, b.output.projection);
        assert_eq!(a.output.rows, b.output.rows);
        assert_eq!(a.output.captured.to_bits(), b.output.captured.to_bits());
    }
    assert_eq!(snap_off.unwrap().comm, snap_on.unwrap().comm);
    let body = std::fs::read_to_string(&path).expect("trace file written");
    assert!(body.starts_with("[\n"), "chrome trace-event array header");
    assert!(body.contains("query.run"), "run spans recorded");
    assert!(body.contains("plan.lookup"), "plan spans recorded");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn disabled_metrics_report_none_and_cost_nothing() {
    let (outcomes, snapshot) = run_workload(config(8, false));
    assert!(snapshot.is_none());
    assert_eq!(outcomes.len(), 4);
}

#[test]
fn snapshot_counters_and_exports_are_coherent() {
    let mut service = Service::new(config(8, true));
    let handle = service.load("tenant", shares(3, 90, 14, 4, 7)).unwrap();
    let queries: Vec<Query> = (0..3).map(|i| z_query(3, 30, 40 + i)).collect();
    for q in &queries {
        handle.submit(q).wait().unwrap();
    }
    let metrics = service.metrics().unwrap();
    let snap = &metrics.datasets[0];
    assert_eq!(snap.name, "tenant");
    assert_eq!(snap.submitted, 3);
    assert_eq!(snap.completed, 3);
    assert_eq!(
        snap.failed + snap.cancelled + snap.expired + snap.rejected,
        0
    );
    assert_eq!(snap.queue_depth, 0);
    assert_eq!(snap.in_flight, 0);
    assert_eq!(snap.latency.count, 3);
    assert_eq!(snap.execute.count, 3);
    assert_eq!(snap.prepare.count, 3);
    assert!(snap.latency.p50_micros().is_some());
    assert!(snap.latency.p99_micros() >= snap.latency.p50_micros());
    assert!(snap.comm.total_words() > 0);
    let cache = snap.plan_cache.as_ref().unwrap();
    assert_eq!(cache.hits + cache.misses, 3);

    let json = metrics.to_json();
    for needle in [
        "\"datasets\"",
        "\"tenant\"",
        "\"latency_bucket_bounds_micros\"",
        "\"comm\"",
        "\"kernel\"",
    ] {
        assert!(json.contains(needle), "JSON export missing {needle}");
    }
    let prom = metrics.to_prometheus();
    for needle in [
        "dlra_queries_submitted_total",
        "dlra_queries_completed_total",
        "dlra_comm_words_total",
        "dlra_query_latency_micros_bucket",
        "dlra_plan_cache_hit_ratio",
    ] {
        assert!(prom.contains(needle), "Prometheus export missing {needle}");
    }
    service.shutdown();
}
