//! Property-based tests of cross-crate invariants (proptest).

use dlra::linalg::{best_rank_k, lowrank::is_projection_of_rank_at_most, residual_sq, svd, Matrix};
use dlra::prelude::*;
use dlra::sampler::{
    check_property_p, FairSq, HuberSq, L1L2Sq, PowerAbs, SampleVector, Square, ZFn,
};
use dlra::util::Rng;
use proptest::prelude::*;

fn small_matrix(seed: u64, n: usize, d: usize, scale: f64) -> Matrix {
    let mut rng = Rng::new(seed);
    Matrix::gaussian(n, d, &mut rng).scaled(scale)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SVD reconstructs and orders singular values for arbitrary shapes.
    #[test]
    fn svd_reconstruction(seed in 0u64..5000, n in 1usize..14, d in 1usize..14) {
        let a = small_matrix(seed, n, d, 2.0);
        let dec = svd(&a).unwrap();
        let err = dec.reconstruct().sub(&a).unwrap().frobenius_norm();
        prop_assert!(err < 1e-8 * (1.0 + a.frobenius_norm()));
        prop_assert!(dec.s.windows(2).all(|w| w[0] >= w[1] - 1e-10));
        prop_assert!(dec.s.iter().all(|&x| x >= 0.0));
    }

    /// Matrix Pythagorean theorem (§II): ‖A−AP‖² = ‖A‖² − ‖AP‖² for any
    /// rank-k SVD projection.
    #[test]
    fn pythagorean_identity(seed in 0u64..5000, k in 1usize..5) {
        let a = small_matrix(seed, 12, 8, 1.0);
        let approx = best_rank_k(&a, k).unwrap();
        let ap = approx.projection.apply(&a).unwrap();
        let lhs = a.sub(&ap).unwrap().frobenius_norm_sq();
        let rhs = a.frobenius_norm_sq() - ap.frobenius_norm_sq();
        prop_assert!((lhs - rhs).abs() < 1e-7 * (1.0 + a.frobenius_norm_sq()));
    }

    /// best_rank_k always returns a valid projection whose residual matches
    /// the SVD tail.
    #[test]
    fn rank_k_projection_valid(seed in 0u64..5000, k in 1usize..6) {
        let a = small_matrix(seed, 10, 7, 1.5);
        let approx = best_rank_k(&a, k).unwrap();
        prop_assert!(is_projection_of_rank_at_most(&approx.projection.to_dense(), k, 1e-7));
        let res = approx.projection.residual_sq(&a).unwrap();
        prop_assert!((res - approx.error_sq).abs() < 1e-7 * (1.0 + approx.total_sq));
    }

    /// Every shipped z-function satisfies property P on random grids.
    #[test]
    fn zfns_satisfy_property_p(seed in 0u64..5000) {
        let mut rng = Rng::new(seed);
        let xs: Vec<f64> = (0..200).map(|_| rng.gaussian() * 10.0).collect();
        let zs: Vec<Box<dyn ZFn>> = vec![
            Box::new(Square),
            Box::new(PowerAbs { alpha: 0.3 + 1.7 * rng.f64() }),
            Box::new(HuberSq { k: 0.5 + 3.0 * rng.f64() }),
            Box::new(L1L2Sq),
            Box::new(FairSq { c: 0.5 + 3.0 * rng.f64() }),
        ];
        for z in &zs {
            prop_assert!(check_property_p(z.as_ref(), &xs), "{}", z.name());
        }
    }

    /// z_inv is a right inverse of z wherever defined.
    #[test]
    fn z_inverse_roundtrip(seed in 0u64..5000, y in 0.0f64..20.0) {
        let mut rng = Rng::new(seed);
        let zs: Vec<Box<dyn ZFn>> = vec![
            Box::new(Square),
            Box::new(PowerAbs { alpha: 0.4 + 1.6 * rng.f64() }),
            Box::new(HuberSq { k: 1.0 + 3.0 * rng.f64() }),
            Box::new(L1L2Sq),
            Box::new(FairSq { c: 1.0 + 3.0 * rng.f64() }),
        ];
        for z in &zs {
            if let Some(x) = z.z_inv(y) {
                let back = z.z(x);
                prop_assert!(
                    (back - y).abs() < 1e-6 * y.max(1.0),
                    "{}: z(z_inv({y})) = {back}", z.name()
                );
            }
        }
    }

    /// The partition model's global matrix equals the direct entrywise
    /// definition f(Σ Aᵗ) for random shares and functions.
    #[test]
    fn model_matches_entrywise_definition(seed in 0u64..5000, s in 1usize..5) {
        let mut rng = Rng::new(seed);
        let parts: Vec<Matrix> = (0..s).map(|_| {
            Matrix::gaussian(6, 4, &mut rng)
        }).collect();
        for f in [EntryFunction::Identity, EntryFunction::Huber { k: 1.0 },
                  EntryFunction::L1L2, EntryFunction::Fair { c: 2.0 }] {
            let model = PartitionModel::new(parts.clone(), f).unwrap();
            let g = model.global_matrix();
            for i in 0..6 {
                for j in 0..4 {
                    let sum: f64 = parts.iter().map(|p| p[(i, j)]).sum();
                    prop_assert!((g[(i, j)] - f.apply(sum)).abs() < 1e-12);
                }
            }
        }
    }

    /// `MatrixServer::value` is total and consistent across servers: below
    /// the matrix both agree; in the injected tail only the coordinator
    /// serves values; past `dim()` every server returns 0.0 — no index is
    /// allowed to panic on one server while another answers 0.0 (the
    /// coordinator used to panic for `j ≥ base + injected.len()`).
    #[test]
    fn matrix_server_value_total_and_consistent(
        seed in 0u64..5000,
        n in 1usize..8,
        d in 1usize..8,
        extra in 0usize..12,
        probe in 0u64..512,
    ) {
        let m = small_matrix(seed, n, d, 1.0);
        let injected: Vec<f64> = (0..extra).map(|i| i as f64 + 1.0).collect();
        let mut coordinator = MatrixServer::new(m.clone());
        let mut server = MatrixServer::new(m);
        coordinator.append_injected(&injected, true);
        server.append_injected(&injected, false);
        let base = (n * d) as u64;
        let dim = base + extra as u64;
        prop_assert_eq!(coordinator.dim(), dim);
        prop_assert_eq!(server.dim(), dim);
        // Probe the whole range plus a tail past `dim()`.
        let j = probe % (dim + 8);
        let vc = coordinator.value(j);
        let vs = server.value(j);
        if j < base {
            prop_assert_eq!(vc, vs);
        } else if j < dim {
            prop_assert_eq!(vc, injected[(j - base) as usize]);
            prop_assert_eq!(vs, 0.0);
        } else {
            prop_assert_eq!(vc, 0.0);
            prop_assert_eq!(vs, 0.0);
        }
    }

    /// Eckart–Young on small matrices: SVD truncation beats random
    /// projections of the same rank.
    #[test]
    fn eckart_young_optimality(seed in 0u64..2000, k in 1usize..4) {
        let a = small_matrix(seed, 9, 6, 1.0);
        let best = best_rank_k(&a, k).unwrap();
        let best_res = best.projection.residual_sq(&a).unwrap();
        let mut rng = Rng::new(seed ^ 0xFFFF);
        let rand_basis = dlra::linalg::orthonormalize_columns(
            &Matrix::gaussian(6, k, &mut rng));
        if rand_basis.cols() == k {
            let p = rand_basis.matmul(&rand_basis.transpose()).unwrap();
            let res = residual_sq(&a, &p).unwrap();
            prop_assert!(res + 1e-8 >= best_res);
        }
    }
}
