//! Systematic accuracy study of the Z-estimator across input regimes:
//! spiky, Zipfian, uniform-bulk, and multi-class planted vectors, for the
//! square and fractional-power z-functions.

use dlra::comm::Cluster;
use dlra::sampler::{run_z_estimator, DenseServerVec, PowerAbs, Square, ZFn, ZSamplerParams};
use dlra::util::Rng;

fn single_server(v: Vec<f64>) -> Cluster<DenseServerVec> {
    Cluster::new(vec![DenseServerVec::new(v)])
}

fn true_z(v: &[f64], z: &dyn ZFn) -> f64 {
    v.iter().map(|&x| z.z(x)).sum()
}

fn params() -> ZSamplerParams {
    ZSamplerParams {
        hh_width: 256,
        ..ZSamplerParams::default()
    }
}

#[track_caller]
fn assert_z_within(v: Vec<f64>, z: &dyn ZFn, factor: f64, seed: u64) {
    let truth = true_z(&v, z);
    let mut c = single_server(v);
    let out = run_z_estimator(&mut c, z, &params(), seed);
    assert!(
        out.z_hat >= truth / factor && out.z_hat <= truth * factor,
        "Ẑ = {} vs Z = {truth} (allowed ×{factor})",
        out.z_hat
    );
}

#[test]
fn spiky_vectors_are_exact() {
    // All mass in a handful of coordinates: recovery is exhaustive.
    for seed in 0..3 {
        let mut rng = Rng::new(seed);
        let mut v = vec![0.0f64; 4096];
        for _ in 0..6 {
            v[rng.index(4096)] = rng.range_f64(5.0, 50.0);
        }
        assert_z_within(v, &Square, 1.01, 10 + seed);
    }
}

#[test]
fn zipf_tail_estimated_within_small_factor() {
    // Zipfian magnitudes: head exact, tail via subsampled level sets.
    let mut rng = Rng::new(4);
    let n = 8192usize;
    let mut v = vec![0.0f64; n];
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    for (rank, &pos) in order.iter().enumerate().take(2000) {
        v[pos] = 30.0 / (1.0 + rank as f64).powf(0.8);
    }
    assert_z_within(v, &Square, 3.0, 20);
}

#[test]
fn uniform_bulk_estimated() {
    // No heavy hitters at all — the hardest case for a recovery-based
    // estimator; everything rides on the windowed level-set counts.
    let mut rng = Rng::new(5);
    let v: Vec<f64> = (0..16384).map(|_| rng.range_f64(0.9, 1.1)).collect();
    assert_z_within(v, &Square, 4.0, 30);
}

#[test]
fn two_planted_classes_both_seen() {
    let mut rng = Rng::new(6);
    let n = 8192usize;
    let mut v = vec![0.0f64; n];
    let mut slots: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut slots);
    for &p in slots.iter().take(16) {
        v[p] = 40.0; // heavy class
    }
    for &p in slots.iter().skip(16).take(1024) {
        v[p] = 1.0; // bulk class
    }
    let truth = true_z(&v, &Square);
    let mut c = single_server(v);
    let out = run_z_estimator(&mut c, &Square, &params(), 40);
    assert!(
        out.z_hat > truth / 3.0 && out.z_hat < truth * 3.0,
        "Ẑ {} vs Z {truth}",
        out.z_hat
    );
    // Both classes must appear among the recovered structure.
    let z_values: Vec<f64> = out
        .classes
        .values()
        .flat_map(|e| e.members.iter().map(|&(_, val)| val * val))
        .collect();
    assert!(
        z_values.iter().any(|&zz| zz > 1000.0),
        "heavy class missing"
    );
    assert!(
        z_values.iter().any(|&zz| (0.5..2.0).contains(&zz)),
        "bulk class missing"
    );
}

#[test]
fn fractional_power_compresses_dynamic_range() {
    // With z = |x|^{0.4} (GM p = 5), magnitudes 1 and 1e5 differ in z by
    // only 100×; the estimator must track z-mass rather than ℓ₂ mass.
    let mut rng = Rng::new(7);
    let n = 4096usize;
    let mut v = vec![0.0f64; n];
    for _ in 0..64 {
        v[rng.index(n)] = 1.0;
    }
    v[0] = 1e5;
    let z = PowerAbs::from_gm_p(5.0);
    assert_z_within(v, &z, 3.0, 50);
}

#[test]
fn estimator_is_deterministic_in_seed() {
    let mut rng = Rng::new(8);
    let v: Vec<f64> = (0..2048).map(|_| rng.gaussian()).collect();
    let mut c1 = single_server(v.clone());
    let mut c2 = single_server(v);
    let o1 = run_z_estimator(&mut c1, &Square, &params(), 99);
    let o2 = run_z_estimator(&mut c2, &Square, &params(), 99);
    assert_eq!(o1.z_hat, o2.z_hat);
    assert_eq!(o1.recovered_count(), o2.recovered_count());
}

#[test]
fn multi_server_matches_single_server_aggregate() {
    // The estimator on s shares of v must behave like on v itself (sketch
    // linearity end to end), up to identical seeds.
    let mut rng = Rng::new(9);
    let v: Vec<f64> = (0..2048)
        .map(|_| {
            if rng.bernoulli(0.05) {
                rng.range_f64(1.0, 20.0)
            } else {
                0.0
            }
        })
        .collect();
    let mut single = single_server(v.clone());
    // 3 additive shares.
    let mut parts = vec![vec![0.0f64; v.len()]; 3];
    for (j, &x) in v.iter().enumerate() {
        let a = rng.gaussian();
        let b = rng.gaussian();
        parts[0][j] = a;
        parts[1][j] = b;
        parts[2][j] = x - a - b;
    }
    let mut multi = Cluster::new(parts.into_iter().map(DenseServerVec::new).collect());
    let o1 = run_z_estimator(&mut single, &Square, &params(), 123);
    let o3 = run_z_estimator(&mut multi, &Square, &params(), 123);
    assert!(
        (o1.z_hat - o3.z_hat).abs() < 1e-6 * o1.z_hat.max(1.0),
        "single {} vs multi {}",
        o1.z_hat,
        o3.z_hat
    );
}
