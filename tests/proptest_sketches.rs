//! Property-based tests of the sketching substrate's guarantees.

use dlra::sketch::{AmsF2, CountMin, CountSketch, HeavyHittersSketch, KWiseHash};
use dlra::util::Rng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// CountSketch is linear: sketch(αu + βv) = α·sketch(u) + β·sketch(v),
    /// observed through point queries.
    #[test]
    fn countsketch_linearity(seed in 0u64..10_000, alpha in -3.0f64..3.0, beta in -3.0f64..3.0) {
        let mut rng = Rng::new(seed);
        let l = 200usize;
        let u: Vec<f64> = (0..l).map(|_| rng.gaussian()).collect();
        let v: Vec<f64> = (0..l).map(|_| rng.gaussian()).collect();
        let mk = || CountSketch::new(4, 32, seed ^ 0xABCD);
        let mut su = mk();
        let mut sv = mk();
        let mut sw = mk();
        for j in 0..l {
            su.update(j as u64, alpha * u[j]);
            sv.update(j as u64, beta * v[j]);
            sw.update(j as u64, alpha * u[j] + beta * v[j]);
        }
        su.merge(&sv);
        for j in (0..l).step_by(17) {
            prop_assert!((su.estimate(j as u64) - sw.estimate(j as u64)).abs() < 1e-9);
        }
    }

    /// CountMin never underestimates on nonnegative input.
    #[test]
    fn countmin_one_sided(seed in 0u64..10_000, width in 8usize..128) {
        let mut rng = Rng::new(seed);
        let l = 300usize;
        let v: Vec<f64> = (0..l).map(|_| rng.f64() * 5.0).collect();
        let mut cm = CountMin::new(3, width, seed);
        cm.update_dense(&v);
        for j in (0..l).step_by(13) {
            prop_assert!(cm.estimate(j as u64) >= v[j] - 1e-12);
        }
        prop_assert!((cm.l1() - v.iter().sum::<f64>()).abs() < 1e-9);
    }

    /// A sufficiently heavy planted coordinate is always recovered.
    #[test]
    fn heavy_hitter_always_recovered(seed in 0u64..10_000, pos in 0u64..2000) {
        let mut rng = Rng::new(seed);
        let l = 2000u64;
        let mut sk = HeavyHittersSketch::new(16.0, 0.001, seed ^ 0x5A5A);
        for j in 0..l {
            if j != pos {
                sk.update(j, rng.gaussian() * 0.05);
            }
        }
        sk.update(pos, 40.0); // overwhelmingly heavy
        let hh = sk.recover_range(l);
        prop_assert!(hh.iter().any(|h| h.index == pos),
            "planted coordinate {pos} missed");
    }

    /// AMS F₂ merge equals the joint sketch on the summed vector.
    #[test]
    fn ams_merge_linearity(seed in 0u64..10_000) {
        let mut rng = Rng::new(seed);
        let l = 128usize;
        let u: Vec<f64> = (0..l).map(|_| rng.gaussian()).collect();
        let v: Vec<f64> = (0..l).map(|_| rng.gaussian()).collect();
        let mut a = AmsF2::new(3, 8, seed);
        let mut b = AmsF2::new(3, 8, seed);
        let mut joint = AmsF2::new(3, 8, seed);
        a.update_dense(&u);
        b.update_dense(&v);
        for j in 0..l {
            joint.update(j as u64, u[j] + v[j]);
        }
        a.merge(&b);
        prop_assert!((a.estimate() - joint.estimate()).abs() < 1e-9);
    }

    /// k-wise hash determinism and range.
    #[test]
    fn kwise_hash_properties(seed in 0u64..10_000, k in 2usize..12, x in 0u64..1_000_000) {
        let h1 = KWiseHash::from_seed(k, seed);
        let h2 = KWiseHash::from_seed(k, seed);
        prop_assert_eq!(h1.hash(x), h2.hash(x));
        prop_assert!(h1.unit(x) >= 0.0 && h1.unit(x) < 1.0);
        let b = h1.bucket(x, 17);
        prop_assert!(b < 17);
        let s = h1.sign(x);
        prop_assert!(s == 1.0 || s == -1.0);
    }

    /// CountSketch estimates are exact when the vector has a single nonzero.
    #[test]
    fn countsketch_single_coordinate_exact(seed in 0u64..10_000, j in 0u64..10_000, val in -100.0f64..100.0) {
        let mut cs = CountSketch::new(5, 64, seed);
        cs.update(j, val);
        prop_assert!((cs.estimate(j) - val).abs() < 1e-12);
    }
}
