//! Substrate-equivalence guarantee: Algorithm 1 on the threaded
//! message-passing runtime **and on the networked socket runtime** is
//! **bit-identical** to the sequential simulator — same projection matrix,
//! same sampled row indices, same boosting score — and consumes
//! **exactly** the same ledger word totals, for every tested seed and
//! cluster size.
//!
//! This is the contract that lets every experiment and test in the
//! workspace interchange substrates freely.

use dlra::comm::{Cluster, Collectives, Topology};
use dlra::core::adaptive::{run_adaptive, AdaptiveConfig};
use dlra::net::SocketCluster;
use dlra::prelude::*;
use dlra::runtime::ThreadedCluster;
use dlra::runtime::{
    socket_model, threaded_model, QueryRequest, Runtime, RuntimeConfig, Substrate,
};
use dlra::util::Rng;

const SEEDS: [u64; 3] = [1, 7, 42];
const SERVER_COUNTS: [usize; 3] = [2, 4, 8];

fn shares(s: usize, n: usize, d: usize, k: usize, seed: u64) -> Vec<dlra::linalg::Matrix> {
    let mut rng = Rng::new(seed);
    let global = dlra::data::noisy_low_rank(n, d, k, 0.1, &mut rng);
    dlra::data::split_with_noise_shares(&global, s, 0.3, &mut rng)
}

/// Runs one config on all three substrates — sequential simulator,
/// threaded message-passing, real sockets — and asserts exact agreement:
/// bit-identical outputs and identical ledger totals, pairwise.
fn assert_equivalent(s: usize, seed: u64, cfg: &Algorithm1Config) {
    let parts = shares(s, 72, 10, 3, seed);
    let mut sequential = PartitionModel::new(parts.clone(), EntryFunction::Identity).unwrap();
    let mut threaded = threaded_model(parts.clone(), EntryFunction::Identity).unwrap();
    let mut socket = socket_model(parts, EntryFunction::Identity).unwrap();

    let a = run_algorithm1(&mut sequential, cfg).unwrap();
    let b = run_algorithm1(&mut threaded, cfg).unwrap();
    let c = run_algorithm1(&mut socket, cfg).unwrap();

    for (name, other) in [("threaded", &b), ("socket", &c)] {
        // Bit-identical outputs.
        assert_eq!(
            a.projection.basis().as_slice(),
            other.projection.basis().as_slice(),
            "{name} projection diverges at s = {s}, seed = {seed}"
        );
        assert_eq!(
            a.rows, other.rows,
            "{name} sampled rows diverge at s = {s}, seed = {seed}"
        );
        assert_eq!(
            a.captured.to_bits(),
            other.captured.to_bits(),
            "{name} boosting score diverges at s = {s}, seed = {seed}"
        );
        // Identical per-run ledger totals.
        assert_eq!(
            a.comm, other.comm,
            "{name} run ledger diverges at s = {s}, seed = {seed}"
        );
    }
    // And whole-cluster ledgers agree across all three substrates.
    assert_eq!(
        sequential.cluster().comm(),
        threaded.cluster().comm(),
        "threaded total ledger diverges at s = {s}, seed = {seed}"
    );
    assert_eq!(
        sequential.cluster().comm(),
        socket.cluster().comm(),
        "socket total ledger diverges at s = {s}, seed = {seed}"
    );
}

#[test]
fn z_sampler_bit_identical_across_substrates() {
    for &s in &SERVER_COUNTS {
        for &seed in &SEEDS {
            let cfg = Algorithm1Config {
                k: 3,
                r: 30,
                sampler: SamplerKind::Z(ZSamplerParams::default()),
                seed,
                ..Default::default()
            };
            assert_equivalent(s, seed, &cfg);
        }
    }
}

#[test]
fn uniform_sampler_bit_identical_across_substrates() {
    for &s in &SERVER_COUNTS {
        for &seed in &SEEDS {
            let cfg = Algorithm1Config {
                k: 2,
                r: 25,
                sampler: SamplerKind::Uniform,
                seed,
                ..Default::default()
            };
            assert_equivalent(s, seed, &cfg);
        }
    }
}

#[test]
fn boosted_runs_bit_identical_across_substrates() {
    let cfg = Algorithm1Config {
        k: 3,
        r: 24,
        boost: 3,
        sampler: SamplerKind::Z(ZSamplerParams::default()),
        seed: 7,
    };
    assert_equivalent(4, 7, &cfg);
}

#[test]
fn adaptive_protocol_bit_identical_across_substrates() {
    let parts = shares(4, 96, 12, 3, 42);
    let mut sequential = PartitionModel::new(parts.clone(), EntryFunction::Identity).unwrap();
    let mut threaded = threaded_model(parts.clone(), EntryFunction::Identity).unwrap();
    let mut socket = socket_model(parts, EntryFunction::Identity).unwrap();
    let cfg = AdaptiveConfig {
        k: 3,
        rounds: 2,
        r_per_round: 20,
        params: ZSamplerParams::default(),
        seed: 42,
    };
    let a = run_adaptive(&mut sequential, &cfg).unwrap();
    for (name, other) in [
        ("threaded", run_adaptive(&mut threaded, &cfg).unwrap()),
        ("socket", run_adaptive(&mut socket, &cfg).unwrap()),
    ] {
        assert_eq!(
            a.projection.basis().as_slice(),
            other.projection.basis().as_slice(),
            "{name}"
        );
        assert_eq!(a.rows_per_round, other.rows_per_round, "{name}");
        assert_eq!(a.comm, other.comm, "{name}");
    }
}

#[test]
fn runtime_submit_matches_both_substrates() {
    let parts = shares(4, 72, 10, 3, 1);
    let cfg = Algorithm1Config {
        k: 3,
        r: 30,
        sampler: SamplerKind::Z(ZSamplerParams::default()),
        seed: 1,
        ..Default::default()
    };

    // The reference runs under the runtime's (possibly env-driven)
    // topology so the ledger comparison holds when CI plumbs
    // `DLRA_TOPOLOGY`.
    let topology = RuntimeConfig::default().topology;
    let mut direct = PartitionModel::with_substrate(parts.clone(), EntryFunction::Identity, |l| {
        Cluster::with_topology(l, topology)
    })
    .unwrap();
    let want = run_algorithm1(&mut direct, &cfg).unwrap();

    for substrate in [
        Substrate::Sequential,
        Substrate::Threaded,
        Substrate::Socket,
    ] {
        let runtime = Runtime::new(
            parts.clone(),
            RuntimeConfig {
                executors: 2,
                substrate,
                ..Default::default()
            },
        )
        .unwrap();
        let got = runtime
            .submit(QueryRequest::identity(cfg.clone()))
            .wait()
            .unwrap();
        assert_eq!(
            got.projection.basis().as_slice(),
            want.projection.basis().as_slice(),
            "{substrate:?}"
        );
        assert_eq!(got.rows, want.rows, "{substrate:?}");
        assert_eq!(got.comm, want.comm, "{substrate:?}");
    }
}

/// The plan cache is an optimization, never a semantic: the same Z query
/// submitted through a cache-enabled and a cache-disabled runtime delivers
/// bit-identical outputs and identical per-query ledger totals, both equal
/// to a direct sequential run. (CI additionally runs this whole suite with
/// `DLRA_PLAN_CACHE=0` and `=32`, toggling the default-config path.)
#[test]
fn plan_cache_on_and_off_stay_ledger_and_bit_identical() {
    let parts = shares(4, 72, 10, 3, 3);
    let cfg = Algorithm1Config {
        k: 3,
        r: 30,
        sampler: SamplerKind::Z(ZSamplerParams::default()),
        seed: 3,
        ..Default::default()
    };
    let topology = RuntimeConfig::default().topology;
    let mut direct = PartitionModel::with_substrate(parts.clone(), EntryFunction::Identity, |l| {
        Cluster::with_topology(l, topology)
    })
    .unwrap();
    let want = run_algorithm1(&mut direct, &cfg).unwrap();

    for substrate in [
        Substrate::Sequential,
        Substrate::Threaded,
        Substrate::Socket,
    ] {
        for plan_cache in [0usize, 8] {
            let runtime = Runtime::new(
                parts.clone(),
                RuntimeConfig {
                    executors: 2,
                    substrate,
                    plan_cache,
                    metrics: true,
                    ..Default::default()
                },
            )
            .unwrap();
            let got = runtime
                .submit(QueryRequest::identity(cfg.clone()))
                .wait()
                .unwrap();
            assert_eq!(
                got.projection.basis().as_slice(),
                want.projection.basis().as_slice(),
                "projection diverges ({substrate:?}, plan_cache = {plan_cache})"
            );
            assert_eq!(got.rows, want.rows);
            assert_eq!(
                got.comm, want.comm,
                "ledger diverges ({substrate:?}, plan_cache = {plan_cache})"
            );
        }
    }
}

/// The topology column of the equivalence matrix: the same query routed
/// sequential-star, sequential-tree, and threaded-tree delivers
/// bit-identical outputs at every tested seed and cluster size (including
/// non-power-of-two `s`), the two tree substrates charge **exactly** the
/// same ledger, the tree moves the same total words as the star, and its
/// coordinator inbox strictly shrinks once `s > 2` — routing is a cost
/// knob, never a semantic.
#[test]
fn topology_matrix_bit_identical_with_smaller_tree_root_inbox() {
    for &s in &[2usize, 4, 8, 9] {
        for &seed in &SEEDS {
            let cfg = Algorithm1Config {
                k: 3,
                r: 24,
                sampler: SamplerKind::Z(ZSamplerParams::default()),
                seed,
                ..Default::default()
            };
            let parts = shares(s, 72, 10, 3, seed);
            let tree = Topology::Tree { fanout: 2 };
            let mut seq_star =
                PartitionModel::with_substrate(parts.clone(), EntryFunction::Identity, |l| {
                    Cluster::with_topology(l, Topology::Star)
                })
                .unwrap();
            let mut seq_tree =
                PartitionModel::with_substrate(parts.clone(), EntryFunction::Identity, |l| {
                    Cluster::with_topology(l, tree)
                })
                .unwrap();
            let mut thr_tree =
                PartitionModel::with_substrate(parts.clone(), EntryFunction::Identity, |l| {
                    ThreadedCluster::with_topology(l, tree)
                })
                .unwrap();
            let mut skt_tree =
                PartitionModel::with_substrate(parts, EntryFunction::Identity, |l| {
                    SocketCluster::with_topology(l, tree)
                })
                .unwrap();

            let star = run_algorithm1(&mut seq_star, &cfg).unwrap();
            let a = run_algorithm1(&mut seq_tree, &cfg).unwrap();
            let b = run_algorithm1(&mut thr_tree, &cfg).unwrap();
            let c = run_algorithm1(&mut skt_tree, &cfg).unwrap();

            // Bit-identical outputs across topologies and substrates.
            assert_eq!(
                star.projection.basis().as_slice(),
                a.projection.basis().as_slice(),
                "star vs tree projection diverges at s = {s}, seed = {seed}"
            );
            for (name, other) in [("threaded", &b), ("socket", &c)] {
                assert_eq!(
                    a.projection.basis().as_slice(),
                    other.projection.basis().as_slice(),
                    "{name} tree projection diverges at s = {s}, seed = {seed}"
                );
                assert_eq!(a.rows, other.rows, "{name}, s = {s}, seed = {seed}");
                assert_eq!(a.captured.to_bits(), other.captured.to_bits(), "{name}");
                // Exact per-run ledger parity between the tree substrates.
                assert_eq!(
                    a.comm, other.comm,
                    "{name} tree run ledger diverges at s = {s}, seed = {seed}"
                );
            }
            assert_eq!(star.rows, a.rows, "s = {s}, seed = {seed}");
            assert_eq!(star.captured.to_bits(), a.captured.to_bits());

            // Whole-cluster ledger parity across all tree substrates.
            assert_eq!(
                seq_tree.cluster().comm(),
                thr_tree.cluster().comm(),
                "tree total ledgers diverge at s = {s}, seed = {seed}"
            );
            assert_eq!(
                seq_tree.cluster().comm(),
                skt_tree.cluster().comm(),
                "socket tree total ledger diverges at s = {s}, seed = {seed}"
            );

            // The tree never moves more data than the star; it only
            // spreads the fan-in, so the coordinator's inbox shrinks.
            let star_comm = seq_star.cluster().comm();
            let tree_comm = seq_tree.cluster().comm();
            assert_eq!(
                star_comm.total_words(),
                tree_comm.total_words(),
                "tree must move exactly the star's words at s = {s}, seed = {seed}"
            );
            if s > 2 {
                assert!(
                    tree_comm.root_inbox_messages < star_comm.root_inbox_messages,
                    "tree root inbox ({}) must shrink below star's ({}) at s = {s}",
                    tree_comm.root_inbox_messages,
                    star_comm.root_inbox_messages
                );
            }
        }
    }
}

/// Copy-on-write residency: loading a `Runtime` and dispatching queries
/// shares the resident matrix storage — no query ever copies the entry
/// data. Observed through the `Arc` refcount of each resident matrix: it
/// is `2` at rest (this test + the runtime), rises **above** `2` while a
/// query's model is alive (a deep copy would never raise it), and falls
/// back to `1` once the runtime is dropped.
#[test]
fn query_dispatch_copies_no_resident_matrix_data() {
    let parts = shares(3, 4096, 16, 3, 5);
    let cfg = Algorithm1Config {
        k: 3,
        r: 40,
        sampler: SamplerKind::Z(ZSamplerParams::default()),
        seed: 5,
        ..Default::default()
    };
    for substrate in [Substrate::Sequential, Substrate::Threaded] {
        let runtime = Runtime::new(
            parts.clone(),
            RuntimeConfig {
                executors: 2,
                substrate,
                ..Default::default()
            },
        )
        .unwrap();
        // Loading shared, did not copy: each matrix is held exactly by
        // this test and by the runtime's resident payload.
        for (mine, resident) in parts.iter().zip(runtime.resident().iter()) {
            assert!(
                mine.shares_storage(resident),
                "loading the runtime copied matrix data ({substrate:?})"
            );
            assert_eq!(mine.storage_refcount(), 2);
        }

        // While a query is in flight its model shares the payload too, so
        // the refcount must exceed 2 at some point. A dispatch that deep-
        // copied would leave it pinned at 2 for the whole run.
        let handle = runtime.submit(QueryRequest::identity(cfg.clone()));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        let mut observed_shared_dispatch = false;
        while std::time::Instant::now() < deadline {
            if parts[0].storage_refcount() > 2 {
                observed_shared_dispatch = true;
                break;
            }
            std::thread::yield_now();
        }
        assert!(
            observed_shared_dispatch,
            "in-flight query never shared the resident payload ({substrate:?})"
        );
        handle.wait().unwrap();

        // Query completion releases the shares; dropping the runtime leaves
        // this test as the sole owner — nothing leaked, nothing copied.
        drop(runtime);
        for mine in &parts {
            assert_eq!(mine.storage_refcount(), 1, "{substrate:?}");
        }
    }
}

/// A full protocol run never detaches a server from the resident storage:
/// Algorithm 1 and the adaptive protocol only touch query-local scratch
/// (injected coordinates, residual views), so after the run every server
/// still aliases the caller's matrices.
#[test]
fn protocol_runs_leave_resident_storage_shared() {
    let parts = shares(4, 72, 10, 3, 7);
    let cfg = Algorithm1Config {
        k: 3,
        r: 30,
        sampler: SamplerKind::Z(ZSamplerParams::default()),
        seed: 7,
        ..Default::default()
    };

    let mut threaded = threaded_model(parts.clone(), EntryFunction::Identity).unwrap();
    run_algorithm1(&mut threaded, &cfg).unwrap();
    let adaptive_cfg = AdaptiveConfig {
        k: 3,
        rounds: 2,
        r_per_round: 15,
        params: ZSamplerParams::default(),
        seed: 7,
    };
    run_adaptive(&mut threaded, &adaptive_cfg).unwrap();
    for (t, part) in parts.iter().enumerate() {
        threaded.cluster().with_local(t, |server| {
            assert!(
                server.shares_resident_storage(part),
                "server {t} detached from the resident storage"
            );
        });
    }

    let mut sequential = PartitionModel::new(parts.clone(), EntryFunction::Identity).unwrap();
    run_algorithm1(&mut sequential, &cfg).unwrap();
    for (t, part) in parts.iter().enumerate() {
        sequential.cluster().with_local(t, |server| {
            assert!(server.shares_resident_storage(part), "server {t} detached");
        });
    }
}
