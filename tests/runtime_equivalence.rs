//! Substrate-equivalence guarantee: Algorithm 1 on the threaded
//! message-passing runtime is **bit-identical** to the sequential
//! simulator — same projection matrix, same sampled row indices, same
//! boosting score — and consumes **exactly** the same ledger word totals,
//! for every tested seed and cluster size.
//!
//! This is the contract that lets every experiment and test in the
//! workspace interchange substrates freely.

use dlra::comm::{Cluster, Collectives, Topology};
use dlra::core::adaptive::{run_adaptive, AdaptiveConfig};
use dlra::prelude::*;
use dlra::runtime::ThreadedCluster;
use dlra::runtime::{threaded_model, QueryRequest, Runtime, RuntimeConfig, Substrate};
use dlra::util::Rng;

const SEEDS: [u64; 3] = [1, 7, 42];
const SERVER_COUNTS: [usize; 3] = [2, 4, 8];

fn shares(s: usize, n: usize, d: usize, k: usize, seed: u64) -> Vec<dlra::linalg::Matrix> {
    let mut rng = Rng::new(seed);
    let global = dlra::data::noisy_low_rank(n, d, k, 0.1, &mut rng);
    dlra::data::split_with_noise_shares(&global, s, 0.3, &mut rng)
}

/// Runs one config on both substrates and asserts exact agreement.
fn assert_equivalent(s: usize, seed: u64, cfg: &Algorithm1Config) {
    let parts = shares(s, 72, 10, 3, seed);
    let mut sequential = PartitionModel::new(parts.clone(), EntryFunction::Identity).unwrap();
    let mut threaded = threaded_model(parts, EntryFunction::Identity).unwrap();

    let a = run_algorithm1(&mut sequential, cfg).unwrap();
    let b = run_algorithm1(&mut threaded, cfg).unwrap();

    // Bit-identical outputs.
    assert_eq!(
        a.projection.basis().as_slice(),
        b.projection.basis().as_slice(),
        "projection diverges at s = {s}, seed = {seed}"
    );
    assert_eq!(
        a.rows, b.rows,
        "sampled rows diverge at s = {s}, seed = {seed}"
    );
    assert_eq!(
        a.captured.to_bits(),
        b.captured.to_bits(),
        "boosting score diverges at s = {s}, seed = {seed}"
    );

    // Identical ledger totals, both for the run delta and the whole ledger.
    assert_eq!(
        a.comm, b.comm,
        "run ledgers diverge at s = {s}, seed = {seed}"
    );
    assert_eq!(
        sequential.cluster().comm(),
        threaded.cluster().comm(),
        "total ledgers diverge at s = {s}, seed = {seed}"
    );
}

#[test]
fn z_sampler_bit_identical_across_substrates() {
    for &s in &SERVER_COUNTS {
        for &seed in &SEEDS {
            let cfg = Algorithm1Config {
                k: 3,
                r: 30,
                sampler: SamplerKind::Z(ZSamplerParams::default()),
                seed,
                ..Default::default()
            };
            assert_equivalent(s, seed, &cfg);
        }
    }
}

#[test]
fn uniform_sampler_bit_identical_across_substrates() {
    for &s in &SERVER_COUNTS {
        for &seed in &SEEDS {
            let cfg = Algorithm1Config {
                k: 2,
                r: 25,
                sampler: SamplerKind::Uniform,
                seed,
                ..Default::default()
            };
            assert_equivalent(s, seed, &cfg);
        }
    }
}

#[test]
fn boosted_runs_bit_identical_across_substrates() {
    let cfg = Algorithm1Config {
        k: 3,
        r: 24,
        boost: 3,
        sampler: SamplerKind::Z(ZSamplerParams::default()),
        seed: 7,
    };
    assert_equivalent(4, 7, &cfg);
}

#[test]
fn adaptive_protocol_bit_identical_across_substrates() {
    let parts = shares(4, 96, 12, 3, 42);
    let mut sequential = PartitionModel::new(parts.clone(), EntryFunction::Identity).unwrap();
    let mut threaded = threaded_model(parts, EntryFunction::Identity).unwrap();
    let cfg = AdaptiveConfig {
        k: 3,
        rounds: 2,
        r_per_round: 20,
        params: ZSamplerParams::default(),
        seed: 42,
    };
    let a = run_adaptive(&mut sequential, &cfg).unwrap();
    let b = run_adaptive(&mut threaded, &cfg).unwrap();
    assert_eq!(
        a.projection.basis().as_slice(),
        b.projection.basis().as_slice()
    );
    assert_eq!(a.rows_per_round, b.rows_per_round);
    assert_eq!(a.comm, b.comm);
}

#[test]
fn runtime_submit_matches_both_substrates() {
    let parts = shares(4, 72, 10, 3, 1);
    let cfg = Algorithm1Config {
        k: 3,
        r: 30,
        sampler: SamplerKind::Z(ZSamplerParams::default()),
        seed: 1,
        ..Default::default()
    };

    // The reference runs under the runtime's (possibly env-driven)
    // topology so the ledger comparison holds when CI plumbs
    // `DLRA_TOPOLOGY`.
    let topology = RuntimeConfig::default().topology;
    let mut direct = PartitionModel::with_substrate(parts.clone(), EntryFunction::Identity, |l| {
        Cluster::with_topology(l, topology)
    })
    .unwrap();
    let want = run_algorithm1(&mut direct, &cfg).unwrap();

    for substrate in [Substrate::Sequential, Substrate::Threaded] {
        let runtime = Runtime::new(
            parts.clone(),
            RuntimeConfig {
                executors: 2,
                substrate,
                ..Default::default()
            },
        )
        .unwrap();
        let got = runtime
            .submit(QueryRequest::identity(cfg.clone()))
            .wait()
            .unwrap();
        assert_eq!(
            got.projection.basis().as_slice(),
            want.projection.basis().as_slice()
        );
        assert_eq!(got.rows, want.rows);
        assert_eq!(got.comm, want.comm);
    }
}

/// The plan cache is an optimization, never a semantic: the same Z query
/// submitted through a cache-enabled and a cache-disabled runtime delivers
/// bit-identical outputs and identical per-query ledger totals, both equal
/// to a direct sequential run. (CI additionally runs this whole suite with
/// `DLRA_PLAN_CACHE=0` and `=32`, toggling the default-config path.)
#[test]
fn plan_cache_on_and_off_stay_ledger_and_bit_identical() {
    let parts = shares(4, 72, 10, 3, 3);
    let cfg = Algorithm1Config {
        k: 3,
        r: 30,
        sampler: SamplerKind::Z(ZSamplerParams::default()),
        seed: 3,
        ..Default::default()
    };
    let topology = RuntimeConfig::default().topology;
    let mut direct = PartitionModel::with_substrate(parts.clone(), EntryFunction::Identity, |l| {
        Cluster::with_topology(l, topology)
    })
    .unwrap();
    let want = run_algorithm1(&mut direct, &cfg).unwrap();

    for substrate in [Substrate::Sequential, Substrate::Threaded] {
        for plan_cache in [0usize, 8] {
            let runtime = Runtime::new(
                parts.clone(),
                RuntimeConfig {
                    executors: 2,
                    substrate,
                    plan_cache,
                    metrics: true,
                    ..Default::default()
                },
            )
            .unwrap();
            let got = runtime
                .submit(QueryRequest::identity(cfg.clone()))
                .wait()
                .unwrap();
            assert_eq!(
                got.projection.basis().as_slice(),
                want.projection.basis().as_slice(),
                "projection diverges ({substrate:?}, plan_cache = {plan_cache})"
            );
            assert_eq!(got.rows, want.rows);
            assert_eq!(
                got.comm, want.comm,
                "ledger diverges ({substrate:?}, plan_cache = {plan_cache})"
            );
        }
    }
}

/// The topology column of the equivalence matrix: the same query routed
/// sequential-star, sequential-tree, and threaded-tree delivers
/// bit-identical outputs at every tested seed and cluster size (including
/// non-power-of-two `s`), the two tree substrates charge **exactly** the
/// same ledger, the tree moves the same total words as the star, and its
/// coordinator inbox strictly shrinks once `s > 2` — routing is a cost
/// knob, never a semantic.
#[test]
fn topology_matrix_bit_identical_with_smaller_tree_root_inbox() {
    for &s in &[2usize, 4, 8, 9] {
        for &seed in &SEEDS {
            let cfg = Algorithm1Config {
                k: 3,
                r: 24,
                sampler: SamplerKind::Z(ZSamplerParams::default()),
                seed,
                ..Default::default()
            };
            let parts = shares(s, 72, 10, 3, seed);
            let tree = Topology::Tree { fanout: 2 };
            let mut seq_star =
                PartitionModel::with_substrate(parts.clone(), EntryFunction::Identity, |l| {
                    Cluster::with_topology(l, Topology::Star)
                })
                .unwrap();
            let mut seq_tree =
                PartitionModel::with_substrate(parts.clone(), EntryFunction::Identity, |l| {
                    Cluster::with_topology(l, tree)
                })
                .unwrap();
            let mut thr_tree =
                PartitionModel::with_substrate(parts, EntryFunction::Identity, |l| {
                    ThreadedCluster::with_topology(l, tree)
                })
                .unwrap();

            let star = run_algorithm1(&mut seq_star, &cfg).unwrap();
            let a = run_algorithm1(&mut seq_tree, &cfg).unwrap();
            let b = run_algorithm1(&mut thr_tree, &cfg).unwrap();

            // Bit-identical outputs across topologies and substrates.
            assert_eq!(
                star.projection.basis().as_slice(),
                a.projection.basis().as_slice(),
                "star vs tree projection diverges at s = {s}, seed = {seed}"
            );
            assert_eq!(
                a.projection.basis().as_slice(),
                b.projection.basis().as_slice(),
                "tree substrates' projections diverge at s = {s}, seed = {seed}"
            );
            assert_eq!(star.rows, a.rows, "s = {s}, seed = {seed}");
            assert_eq!(a.rows, b.rows, "s = {s}, seed = {seed}");
            assert_eq!(star.captured.to_bits(), a.captured.to_bits());
            assert_eq!(a.captured.to_bits(), b.captured.to_bits());

            // Exact ledger parity between the tree substrates — per-run
            // delta and whole-ledger alike.
            assert_eq!(
                a.comm, b.comm,
                "tree run ledgers diverge at s = {s}, seed = {seed}"
            );
            assert_eq!(
                seq_tree.cluster().comm(),
                thr_tree.cluster().comm(),
                "tree total ledgers diverge at s = {s}, seed = {seed}"
            );

            // The tree never moves more data than the star; it only
            // spreads the fan-in, so the coordinator's inbox shrinks.
            let star_comm = seq_star.cluster().comm();
            let tree_comm = seq_tree.cluster().comm();
            assert_eq!(
                star_comm.total_words(),
                tree_comm.total_words(),
                "tree must move exactly the star's words at s = {s}, seed = {seed}"
            );
            if s > 2 {
                assert!(
                    tree_comm.root_inbox_messages < star_comm.root_inbox_messages,
                    "tree root inbox ({}) must shrink below star's ({}) at s = {s}",
                    tree_comm.root_inbox_messages,
                    star_comm.root_inbox_messages
                );
            }
        }
    }
}

/// Copy-on-write residency: loading a `Runtime` and dispatching queries
/// shares the resident matrix storage — no query ever copies the entry
/// data. Observed through the `Arc` refcount of each resident matrix: it
/// is `2` at rest (this test + the runtime), rises **above** `2` while a
/// query's model is alive (a deep copy would never raise it), and falls
/// back to `1` once the runtime is dropped.
#[test]
fn query_dispatch_copies_no_resident_matrix_data() {
    let parts = shares(3, 4096, 16, 3, 5);
    let cfg = Algorithm1Config {
        k: 3,
        r: 40,
        sampler: SamplerKind::Z(ZSamplerParams::default()),
        seed: 5,
        ..Default::default()
    };
    for substrate in [Substrate::Sequential, Substrate::Threaded] {
        let runtime = Runtime::new(
            parts.clone(),
            RuntimeConfig {
                executors: 2,
                substrate,
                ..Default::default()
            },
        )
        .unwrap();
        // Loading shared, did not copy: each matrix is held exactly by
        // this test and by the runtime's resident payload.
        for (mine, resident) in parts.iter().zip(runtime.resident().iter()) {
            assert!(
                mine.shares_storage(resident),
                "loading the runtime copied matrix data ({substrate:?})"
            );
            assert_eq!(mine.storage_refcount(), 2);
        }

        // While a query is in flight its model shares the payload too, so
        // the refcount must exceed 2 at some point. A dispatch that deep-
        // copied would leave it pinned at 2 for the whole run.
        let handle = runtime.submit(QueryRequest::identity(cfg.clone()));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        let mut observed_shared_dispatch = false;
        while std::time::Instant::now() < deadline {
            if parts[0].storage_refcount() > 2 {
                observed_shared_dispatch = true;
                break;
            }
            std::thread::yield_now();
        }
        assert!(
            observed_shared_dispatch,
            "in-flight query never shared the resident payload ({substrate:?})"
        );
        handle.wait().unwrap();

        // Query completion releases the shares; dropping the runtime leaves
        // this test as the sole owner — nothing leaked, nothing copied.
        drop(runtime);
        for mine in &parts {
            assert_eq!(mine.storage_refcount(), 1, "{substrate:?}");
        }
    }
}

/// A full protocol run never detaches a server from the resident storage:
/// Algorithm 1 and the adaptive protocol only touch query-local scratch
/// (injected coordinates, residual views), so after the run every server
/// still aliases the caller's matrices.
#[test]
fn protocol_runs_leave_resident_storage_shared() {
    let parts = shares(4, 72, 10, 3, 7);
    let cfg = Algorithm1Config {
        k: 3,
        r: 30,
        sampler: SamplerKind::Z(ZSamplerParams::default()),
        seed: 7,
        ..Default::default()
    };

    let mut threaded = threaded_model(parts.clone(), EntryFunction::Identity).unwrap();
    run_algorithm1(&mut threaded, &cfg).unwrap();
    let adaptive_cfg = AdaptiveConfig {
        k: 3,
        rounds: 2,
        r_per_round: 15,
        params: ZSamplerParams::default(),
        seed: 7,
    };
    run_adaptive(&mut threaded, &adaptive_cfg).unwrap();
    for (t, part) in parts.iter().enumerate() {
        threaded.cluster().with_local(t, |server| {
            assert!(
                server.shares_resident_storage(part),
                "server {t} detached from the resident storage"
            );
        });
    }

    let mut sequential = PartitionModel::new(parts.clone(), EntryFunction::Identity).unwrap();
    run_algorithm1(&mut sequential, &cfg).unwrap();
    for (t, part) in parts.iter().enumerate() {
        sequential.cluster().with_local(t, |server| {
            assert!(server.shares_resident_storage(part), "server {t} detached");
        });
    }
}
