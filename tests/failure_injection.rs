//! Failure injection and edge-case integration tests: degenerate data,
//! starved budgets, adversarial skew, and the protocol's error paths.

use dlra::comm::Cluster;
use dlra::linalg::Matrix;
use dlra::prelude::*;
use dlra::sampler::{DenseServerVec, Square, ZSampler};
use dlra::util::Rng;

#[test]
fn all_zero_data_fails_cleanly_everywhere() {
    let parts = vec![Matrix::zeros(40, 8); 3];
    let mut model = PartitionModel::new(parts, EntryFunction::Identity).unwrap();
    for sampler in [
        SamplerKind::ExactOracle,
        SamplerKind::Z(ZSamplerParams::default()),
    ] {
        let cfg = Algorithm1Config {
            k: 2,
            r: 10,
            sampler,
            ..Algorithm1Config::default()
        };
        assert!(run_algorithm1(&mut model, &cfg).is_err());
    }
    // Uniform sampling technically runs (all rows are zero) but FKV must
    // reject the zero-probability rows... uniform q = 1/n > 0, so it
    // produces the zero projection-of-B case; verify it doesn't panic.
    let cfg = Algorithm1Config {
        k: 2,
        r: 10,
        sampler: SamplerKind::Uniform,
        ..Algorithm1Config::default()
    };
    if let Ok(out) = run_algorithm1(&mut model, &cfg) {
        // Whatever projection comes back must be harmless on zero data.
        let eval = evaluate_projection(&model.global_matrix(), &out.projection, 2).unwrap();
        assert_eq!(eval.additive_error, 0.0);
    }
}

#[test]
fn single_row_matrix() {
    let mut rng = Rng::new(1);
    let a = Matrix::gaussian(1, 12, &mut rng);
    let parts = dlra::data::split_additively(&a, 3, &mut rng);
    let mut model = PartitionModel::new(parts, EntryFunction::Identity).unwrap();
    let cfg = Algorithm1Config {
        k: 1,
        r: 5,
        sampler: SamplerKind::Z(ZSamplerParams::default()),
        ..Algorithm1Config::default()
    };
    let out = run_algorithm1(&mut model, &cfg).unwrap();
    // One row: rank-1 projection must capture it exactly.
    let eval = evaluate_projection(&model.global_matrix(), &out.projection, 1).unwrap();
    assert!(eval.additive_error < 1e-9, "{}", eval.additive_error);
}

#[test]
fn one_server_holds_everything() {
    // Degenerate partition: s−1 servers hold zeros.
    let mut rng = Rng::new(2);
    let a = dlra::data::noisy_low_rank(120, 10, 2, 0.05, &mut rng);
    let mut parts = vec![Matrix::zeros(120, 10); 4];
    parts[2] = a;
    let mut model = PartitionModel::new(parts, EntryFunction::Identity).unwrap();
    let cfg = Algorithm1Config {
        k: 2,
        r: 60,
        sampler: SamplerKind::Z(ZSamplerParams::default()),
        ..Algorithm1Config::default()
    };
    let out = run_algorithm1(&mut model, &cfg).unwrap();
    let eval = evaluate_projection(&model.global_matrix(), &out.projection, 2).unwrap();
    assert!(eval.additive_error < 0.3, "{}", eval.additive_error);
}

#[test]
fn cancellation_across_servers() {
    // Local shares are huge but nearly cancel: the aggregate is small.
    // Sketch linearity must handle this (the sketches see the sums).
    let mut rng = Rng::new(3);
    let signal = dlra::data::noisy_low_rank(100, 8, 2, 0.01, &mut rng);
    let big = Matrix::gaussian(100, 8, &mut rng).scaled(1e4);
    let parts = vec![signal.add(&big).unwrap(), big.scaled(-1.0)];
    let mut model = PartitionModel::new(parts, EntryFunction::Identity).unwrap();
    let cfg = Algorithm1Config {
        k: 2,
        r: 50,
        sampler: SamplerKind::Z(ZSamplerParams::default()),
        ..Algorithm1Config::default()
    };
    let out = run_algorithm1(&mut model, &cfg).unwrap();
    let eval = evaluate_projection(&model.global_matrix(), &out.projection, 2).unwrap();
    assert!(eval.additive_error < 0.35, "{}", eval.additive_error);
}

#[test]
fn starved_sampler_budget_still_sound() {
    // A pathologically small sketch budget: quality degrades but the
    // protocol stays correct (no panic, valid projection, q̂ ∈ (0, 1]).
    let mut rng = Rng::new(4);
    let a = dlra::data::noisy_low_rank(200, 12, 2, 0.1, &mut rng);
    let parts = dlra::data::split_additively(&a, 4, &mut rng);
    let mut model = PartitionModel::new(parts, EntryFunction::Identity).unwrap();
    let params = ZSamplerParams::practical((200 * 12) as u64, 64); // starved
    let cfg = Algorithm1Config {
        k: 2,
        r: 40,
        sampler: SamplerKind::Z(params),
        ..Algorithm1Config::default()
    };
    match run_algorithm1(&mut model, &cfg) {
        Ok(out) => {
            assert!(dlra::linalg::lowrank::is_projection_of_rank_at_most(
                &out.projection.to_dense(),
                2,
                1e-6
            ));
        }
        Err(e) => {
            // Acceptable: the sampler may find nothing under starvation,
            // but it must say so, not panic.
            let msg = format!("{e}");
            assert!(msg.contains("sampler"), "unexpected error {msg}");
        }
    }
}

#[test]
fn extreme_skew_single_heavy_row() {
    // One row carries ~all the mass; the sampler must find it and the
    // rank-1 approximation must capture nearly everything.
    let mut rng = Rng::new(5);
    let mut a = Matrix::gaussian(300, 10, &mut rng).scaled(0.01);
    for j in 0..10 {
        a[(123, j)] = 100.0 * (j as f64 + 1.0);
    }
    let parts = dlra::data::split_entrywise(&a, 5, &mut rng);
    let mut model = PartitionModel::new(parts, EntryFunction::Identity).unwrap();
    let cfg = Algorithm1Config {
        k: 1,
        r: 30,
        sampler: SamplerKind::Z(ZSamplerParams::default()),
        ..Algorithm1Config::default()
    };
    let out = run_algorithm1(&mut model, &cfg).unwrap();
    assert!(
        out.rows.iter().filter(|&&i| i == 123).count() > out.rows.len() / 2,
        "heavy row undersampled: {:?}",
        &out.rows[..10.min(out.rows.len())]
    );
    let eval = evaluate_projection(&model.global_matrix(), &out.projection, 1).unwrap();
    assert!(eval.additive_error < 0.05, "{}", eval.additive_error);
}

#[test]
fn draws_exhaust_gracefully_when_everything_is_injected() {
    // A vector whose only mass is tiny relative to what injection adds:
    // draws may fail, but draw_many returns fewer rather than panicking.
    let mut v = vec![0.0f64; 512];
    v[7] = 1e-12;
    let mut cluster = Cluster::new(vec![DenseServerVec::new(v)]);
    let sampler = ZSampler::new(ZSamplerParams::default(), 9);
    let prepared = sampler.prepare(&mut cluster, &Square);
    let mut rng = Rng::new(10);
    let draws = prepared.draw_many(50, &mut rng);
    for d in draws {
        assert!(d.coord < 512);
        assert!(d.q_hat > 0.0 && d.q_hat <= 1.0);
    }
}

#[test]
fn sampler_stats_are_consistent() {
    let mut rng = Rng::new(11);
    let v: Vec<f64> = (0..2048).map(|_| rng.gaussian()).collect();
    let mut cluster = Cluster::new(vec![DenseServerVec::new(v)]);
    let sampler = ZSampler::new(ZSamplerParams::default(), 12);
    let prepared = sampler.prepare(&mut cluster, &Square);
    let stats = prepared.stats();
    assert_eq!(stats.base_dim, 2048);
    assert!(stats.num_classes > 0);
    assert!(stats.total_candidates >= stats.num_classes);
    assert!(stats.injected_candidates <= stats.total_candidates);
    assert!(stats.z_hat > 0.0);
}

#[test]
fn nan_probability_rows_rejected_by_fkv() {
    use dlra::core::{build_b_matrix, SampledRow};
    let rows = vec![SampledRow {
        index: 0,
        values: vec![1.0, 2.0],
        q_hat: f64::NAN,
    }];
    assert!(build_b_matrix(&rows).is_err());
}
