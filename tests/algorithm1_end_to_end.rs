//! End-to-end integration tests of Algorithm 1 across sampler kinds and
//! entrywise functions, spanning `dlra-comm`, `dlra-sampler`, `dlra-core`,
//! and `dlra-data`.

use dlra::core::algorithm1::ship_everything_words;
use dlra::core::metrics::predicted_additive_error;
use dlra::prelude::*;
use dlra::util::Rng;

fn identity_model(s: usize, n: usize, d: usize, k: usize, seed: u64) -> PartitionModel {
    let mut rng = Rng::new(seed);
    let global = dlra::data::noisy_low_rank(n, d, k, 0.08, &mut rng);
    let parts = dlra::data::split_with_noise_shares(&global, s, 0.3, &mut rng);
    PartitionModel::new(parts, EntryFunction::Identity).unwrap()
}

#[test]
fn all_sampler_kinds_beat_the_paper_prediction() {
    let k = 3;
    let r = 90;
    for (name, sampler) in [
        ("exact", SamplerKind::ExactOracle),
        ("uniform", SamplerKind::Uniform),
        ("z", SamplerKind::Z(ZSamplerParams::default())),
    ] {
        let mut model = identity_model(4, 250, 20, k, 11);
        let cfg = Algorithm1Config {
            k,
            r,
            sampler,
            seed: 21,
            ..Algorithm1Config::default()
        };
        let out = run_algorithm1(&mut model, &cfg).unwrap();
        let eval = evaluate_projection(&model.global_matrix(), &out.projection, k).unwrap();
        let prediction = predicted_additive_error(k, r);
        assert!(
            eval.additive_error < prediction,
            "{name}: additive {} ≥ prediction {prediction}",
            eval.additive_error
        );
    }
}

#[test]
fn z_sampler_tracks_exact_oracle() {
    // The approximate sampler should land within a modest factor of the
    // idealized FKV sampler on the same data.
    let k = 3;
    let r = 100;
    let mut m1 = identity_model(3, 220, 16, k, 31);
    let mut m2 = identity_model(3, 220, 16, k, 31);
    let exact = run_algorithm1(
        &mut m1,
        &Algorithm1Config {
            k,
            r,
            sampler: SamplerKind::ExactOracle,
            seed: 5,
            ..Algorithm1Config::default()
        },
    )
    .unwrap();
    let approx = run_algorithm1(
        &mut m2,
        &Algorithm1Config {
            k,
            r,
            sampler: SamplerKind::Z(ZSamplerParams::default()),
            seed: 5,
            ..Algorithm1Config::default()
        },
    )
    .unwrap();
    let truth = m1.global_matrix();
    let e_exact = evaluate_projection(&truth, &exact.projection, k).unwrap();
    let e_approx = evaluate_projection(&truth, &approx.projection, k).unwrap();
    assert!(
        e_approx.additive_error < 12.0 * (e_exact.additive_error + 1e-3),
        "approx {} vs exact {}",
        e_approx.additive_error,
        e_exact.additive_error
    );
}

#[test]
fn theorem1_row_collection_cost() {
    // O(s·k²/ε²·d) words for row collection: check the exact fetch cost of
    // the uniform path (frames included) against the closed form.
    let (s, n, d) = (6usize, 400usize, 24usize);
    let mut model = identity_model(s, n, d, 2, 41);
    let cfg = Algorithm1Config {
        k: 2,
        r: 50,
        sampler: SamplerKind::Uniform,
        seed: 3,
        ..Algorithm1Config::default()
    };
    let out = run_algorithm1(&mut model, &cfg).unwrap();
    let mut distinct = out.rows.clone();
    distinct.sort_unstable();
    distinct.dedup();
    let dr = distinct.len() as u64;
    let su = (s - 1) as u64;
    // Downstream: row-index list (+1 frame) per server; upstream: d words
    // per row (+1 frame) per server.
    let expect_down = su * (dr + 1);
    let expect_up = su * (dr * d as u64 + 1);
    assert_eq!(out.comm.downstream_words, expect_down);
    assert_eq!(out.comm.upstream_words, expect_up);
}

#[test]
fn protocol_beats_ship_everything_at_scale() {
    let mut model = identity_model(8, 600, 32, 3, 51);
    let cfg = Algorithm1Config {
        k: 3,
        r: 60,
        sampler: SamplerKind::Z(ZSamplerParams::practical((600 * 32) as u64, 1200)),
        seed: 13,
        ..Algorithm1Config::default()
    };
    let out = run_algorithm1(&mut model, &cfg).unwrap();
    assert!(
        out.comm.total_words() < ship_everything_words(&model),
        "protocol used {} words, naive shipping {}",
        out.comm.total_words(),
        ship_everything_words(&model)
    );
}

#[test]
fn huber_model_end_to_end_with_outliers() {
    let mut rng = Rng::new(61);
    let mut global = dlra::data::noisy_low_rank(200, 16, 2, 0.05, &mut rng);
    for _ in 0..8 {
        let i = rng.index(200);
        let j = rng.index(16);
        global[(i, j)] = 5e3;
    }
    let parts = dlra::data::split_entrywise(&global, 5, &mut rng);
    let mut model = PartitionModel::new(parts, EntryFunction::Huber { k: 5.0 }).unwrap();
    let cfg = Algorithm1Config {
        k: 2,
        r: 80,
        sampler: SamplerKind::Z(ZSamplerParams::default()),
        seed: 17,
        ..Algorithm1Config::default()
    };
    let out = run_algorithm1(&mut model, &cfg).unwrap();
    let capped = model.global_matrix();
    assert!(capped.max_abs() <= 5.0 + 1e-9);
    let eval = evaluate_projection(&capped, &out.projection, 2).unwrap();
    assert!(
        eval.additive_error < 0.3,
        "additive {}",
        eval.additive_error
    );
}

#[test]
fn gm_pooling_model_end_to_end() {
    let ds_parts = {
        let mut rng = Rng::new(71);
        // Tiny pooled-codes workload.
        let (s, n, d) = (4usize, 100usize, 32usize);
        let mut parts = vec![dlra::linalg::Matrix::zeros(n, d); s];
        for i in 0..n {
            for _ in 0..20 {
                let j = rng.index(d / 2); // concentrated codewords
                let t = rng.index(s);
                parts[t][(i, j)] += 1.0;
            }
        }
        parts
    };
    let mut model = PartitionModel::gm_pooling(ds_parts, 5.0).unwrap();
    let cfg = Algorithm1Config {
        k: 3,
        r: 70,
        sampler: SamplerKind::Z(ZSamplerParams::default()),
        seed: 19,
        ..Algorithm1Config::default()
    };
    let out = run_algorithm1(&mut model, &cfg).unwrap();
    let eval = evaluate_projection(&model.global_matrix(), &out.projection, 3).unwrap();
    assert!(
        eval.additive_error < 0.3,
        "additive {}",
        eval.additive_error
    );
}

#[test]
fn repeated_runs_are_deterministic_in_seed() {
    let cfg = Algorithm1Config {
        k: 2,
        r: 40,
        sampler: SamplerKind::Z(ZSamplerParams::default()),
        seed: 23,
        ..Algorithm1Config::default()
    };
    let mut m1 = identity_model(3, 150, 12, 2, 81);
    let mut m2 = identity_model(3, 150, 12, 2, 81);
    let o1 = run_algorithm1(&mut m1, &cfg).unwrap();
    let o2 = run_algorithm1(&mut m2, &cfg).unwrap();
    assert_eq!(o1.rows, o2.rows);
    assert_eq!(o1.comm, o2.comm);
    // Factored projections make determinism checkable bitwise: the two
    // runs must produce the exact same basis.
    assert_eq!(
        o1.projection.basis().as_slice(),
        o2.projection.basis().as_slice()
    );
}

#[test]
fn gm_sampler_communication_is_p_independent() {
    // §VI-B: "the communication costs of our algorithm does not depend
    // on p". Identical params + shapes + seeds across p must produce
    // identical sampler communication (the sketches see locally powered
    // values, but their SIZE is data-independent).
    let mut comm_at_p = Vec::new();
    for &p in &[1.0f64, 2.0, 5.0, 20.0] {
        let mut rng = Rng::new(314);
        let (s, n, d) = (4usize, 80usize, 16usize);
        let mut parts = vec![dlra::linalg::Matrix::zeros(n, d); s];
        for i in 0..n {
            for _ in 0..12 {
                let j = rng.index(d);
                let t = rng.index(s);
                parts[t][(i, j)] += 1.0;
            }
        }
        let mut model = PartitionModel::gm_pooling(parts, p).unwrap();
        let cfg = Algorithm1Config {
            k: 2,
            r: 30,
            sampler: SamplerKind::Z(ZSamplerParams::default()),
            seed: 99,
            ..Algorithm1Config::default()
        };
        let out = run_algorithm1(&mut model, &cfg).unwrap();
        comm_at_p.push(out.comm.total_words());
    }
    let min = *comm_at_p.iter().min().unwrap() as f64;
    let max = *comm_at_p.iter().max().unwrap() as f64;
    // Identical up to candidate-recovery noise (< 20% spread).
    assert!(
        max / min < 1.2,
        "communication varies with p: {comm_at_p:?}"
    );
}
