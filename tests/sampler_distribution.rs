//! Statistical validation of the distributed Z-sampler: empirical draw
//! frequencies against the exact `z(aᵢ)/Z(a)` distribution, and `Ẑ`
//! accuracy, across the paper's z-functions.

use dlra::comm::Cluster;
use dlra::sampler::{
    exact_weights, DenseServerVec, HuberSq, PowerAbs, Square, ZFn, ZSampler, ZSamplerParams,
};
use dlra::util::Rng;

fn cluster_from_aggregate(agg: &[f64], s: usize, rng: &mut Rng) -> Cluster<DenseServerVec> {
    // Additive random shares of the aggregate.
    let l = agg.len();
    let mut parts: Vec<Vec<f64>> = vec![vec![0.0; l]; s];
    for (j, &v) in agg.iter().enumerate() {
        let mut rest = v;
        for p in parts.iter_mut().take(s - 1) {
            let share = rng.gaussian() * 0.05 * v.abs().max(0.1);
            p[j] = share;
            rest -= share;
        }
        parts[s - 1][j] = rest;
    }
    Cluster::new(parts.into_iter().map(DenseServerVec::new).collect())
}

/// Total-variation distance between empirical row frequencies and truth,
/// restricted to the drawn support (coordinates with meaningful mass).
fn tv_distance(
    draw_counts: &std::collections::BTreeMap<u64, usize>,
    truth: &[f64],
    n: usize,
) -> f64 {
    let total: f64 = truth.iter().sum();
    let mut tv = 0.0;
    for (j, &w) in truth.iter().enumerate() {
        let emp = draw_counts.get(&(j as u64)).copied().unwrap_or(0) as f64 / n as f64;
        tv += (emp - w / total).abs();
    }
    tv / 2.0
}

fn check_distribution(zfn: &dyn ZFn, agg: Vec<f64>, tol_tv: f64, seed: u64) {
    let mut rng = Rng::new(seed);
    let mut cluster = cluster_from_aggregate(&agg, 4, &mut rng);
    let truth = exact_weights(&cluster, zfn);
    let total: f64 = truth.iter().sum();
    assert!(total > 0.0);

    let sampler = ZSampler::new(ZSamplerParams::default(), seed ^ 0xABCD);
    let prepared = sampler.prepare(&mut cluster, zfn);
    assert!(!prepared.is_empty(), "{}: empty sampler", zfn.name());

    // Ẑ within a factor of 3 of the truth.
    let zh = prepared.z_hat();
    assert!(
        zh > total / 3.0 && zh < total * 3.0,
        "{}: Ẑ = {zh} vs Z = {total}",
        zfn.name()
    );

    let n = 3000;
    let draws = prepared.draw_many(n, &mut rng);
    assert!(draws.len() > n / 2, "{}: too many FAILs", zfn.name());
    let mut counts = std::collections::BTreeMap::new();
    for d in &draws {
        *counts.entry(d.coord).or_insert(0usize) += 1;
    }
    let tv = tv_distance(&counts, &truth, draws.len());
    assert!(
        tv < tol_tv,
        "{}: TV distance {tv} exceeds {tol_tv}",
        zfn.name()
    );
}

#[test]
fn square_distribution_on_spiky_vector() {
    // A few dominant coordinates: the sampler must nail these.
    let mut agg = vec![0.0f64; 4000];
    agg[3] = 50.0;
    agg[700] = -35.0;
    agg[2222] = 20.0;
    agg[3999] = 10.0;
    check_distribution(&Square, agg, 0.25, 1);
}

#[test]
fn square_distribution_with_bulk_mass() {
    // Heavy head + a bulk class holding ~half the mass.
    let mut rng = Rng::new(2);
    let mut agg = vec![0.0f64; 4096];
    agg[0] = 30.0;
    agg[1] = -30.0;
    for _ in 0..450 {
        let j = 2 + rng.index(4094);
        agg[j] = 2.0;
    }
    check_distribution(&Square, agg, 0.45, 3);
}

#[test]
fn power_abs_distribution_gm_p5() {
    // ℓ_{2/5} sampling flattens magnitude differences: z(x) = |x|^{0.4}.
    let mut rng = Rng::new(4);
    let mut agg = vec![0.0f64; 2048];
    for j in 0..64 {
        agg[j * 32] = rng.range_f64(1.0, 1000.0);
    }
    check_distribution(&PowerAbs::from_gm_p(5.0), agg, 0.5, 5);
}

#[test]
fn huber_distribution_ignores_outliers() {
    let mut agg = vec![0.0f64; 2048];
    for j in 0..100 {
        agg[j * 20] = 1.0;
    }
    agg[1111] = 1e7; // z-capped
    check_distribution(&HuberSq { k: 1.0 }, agg, 0.5, 6);
}

#[test]
fn draws_report_exact_values() {
    let mut rng = Rng::new(7);
    let mut agg = vec![0.0f64; 1024];
    for j in (0..1024).step_by(50) {
        agg[j] = rng.range_f64(-9.0, 9.0);
    }
    let mut cluster = cluster_from_aggregate(&agg, 3, &mut rng);
    let sampler = ZSampler::new(ZSamplerParams::default(), 99);
    let prepared = sampler.prepare(&mut cluster, &Square);
    for d in prepared.draw_many(300, &mut rng) {
        let truth = agg[d.coord as usize];
        assert!(
            (d.value - truth).abs() < 1e-6 * truth.abs().max(1.0),
            "coord {}: value {} vs truth {truth}",
            d.coord,
            d.value
        );
    }
}

#[test]
fn sampler_communication_is_sublinear_in_data() {
    // The whole point: sampling costs ≪ shipping the vectors.
    let l = 1 << 15;
    let mut rng = Rng::new(8);
    let agg: Vec<f64> = (0..l).map(|_| rng.gaussian()).collect();
    let s = 6;
    let mut cluster = cluster_from_aggregate(&agg, s, &mut rng);
    let params = ZSamplerParams::practical(l as u64, 2000);
    let sampler = ZSampler::new(params, 11);
    let prepared = sampler.prepare(&mut cluster, &Square);
    assert!(!prepared.is_empty());
    let words = cluster.comm().total_words();
    let data_words = (s * l) as u64;
    assert!(
        words < data_words / 2,
        "sampling cost {words} vs data {data_words}"
    );
}
