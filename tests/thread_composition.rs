//! Kernel/runtime thread composition: the threaded substrate's server
//! workers pin kernel threading to 1 (`dlra_linalg::with_threads`), so
//! `s` server workers × `DLRA_THREADS` kernel threads can never
//! oversubscribe multiplicatively. Proved through the kernel layer's
//! parallelism watermark — the counters are process-global, so this file
//! holds exactly one test (its own binary → its own process).
//!
//! Lower bounds on the watermark are deliberately loose: on a single-core
//! runner the pool's workers may execute their panels one after another,
//! so only the *upper* bound (the budget) is deterministic.

use dlra::comm::Collectives;
use dlra::linalg::{
    parallelism_watermark, reset_parallelism_watermark, set_threads, threads, with_threads, Matrix,
};
use dlra::runtime::ThreadedCluster;
use dlra::util::Rng;

#[test]
fn kernel_threads_never_exceed_the_configured_budget() {
    // A gram big enough to clear the kernel layer's parallel-work floor
    // (r·c² = 512·128² ≈ 8.4M flops > 2²¹).
    let mut rng = Rng::new(3);
    let big = Matrix::gaussian(512, 128, &mut rng);

    // Baseline: with the process knob at 4, a lone kernel call keeps at
    // most 4 kernel threads live (the caller plus ≤ 3 pool workers); the
    // watermark always observes at least the caller itself.
    set_threads(4);
    reset_parallelism_watermark();
    let direct = big.gram();
    assert!(
        (1..=4).contains(&parallelism_watermark()),
        "lone kernel watermark {} outside [1, 4]",
        parallelism_watermark()
    );

    // Scoped pin: the same call under with_threads(1, ..) runs inline —
    // exactly one live kernel thread, deterministically.
    reset_parallelism_watermark();
    let pinned = with_threads(1, || big.gram());
    assert_eq!(parallelism_watermark(), 1, "scoped override not observed");
    assert_eq!(direct.as_slice(), pinned.as_slice(), "pinning changed bits");

    // Composition: s = 6 server workers each running the same kernel
    // concurrently, with the process knob still at 4. Server workers pin
    // kernels to 1, so the budget is s × 1 = 6 live kernel threads — not
    // the s × 4 = 24 the two layers would multiply to unpinned.
    let s = 6;
    let locals: Vec<Matrix> = (0..s).map(|_| big.clone()).collect();
    let mut cluster = ThreadedCluster::new(locals);
    reset_parallelism_watermark();
    let observed = cluster.gather("composition.gram", |_t, local: &mut Matrix| {
        let g = local.gram();
        // Inside a server worker the kernel layer must observe the pin.
        (threads() as f64) + g[(0, 0)] * 0.0
    });
    assert!(
        parallelism_watermark() <= s,
        "total live kernel threads {} exceeded the budget of {s}",
        parallelism_watermark()
    );
    for (t, &seen) in observed.iter().enumerate() {
        assert_eq!(seen, 1.0, "server worker {t} saw {seen} kernel threads");
    }

    // And the per-server results are the pinned (= unpinned) bits.
    cluster.with_local(0, |local: &Matrix| {
        assert_eq!(local.gram().as_slice(), direct.as_slice());
    });

    set_threads(1);
}
