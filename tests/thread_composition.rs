//! Kernel/runtime thread composition: the threaded substrate's server
//! workers pin kernel threading to 1 (`dlra_linalg::with_threads`), so
//! `s` server workers × `DLRA_THREADS` kernel threads can never
//! oversubscribe multiplicatively — and service executors budget
//! coordinator-side kernels at `max(1, total/executors)`, so high
//! executor counts cannot oversubscribe either. Proved through the kernel
//! layer's parallelism watermark — the counters are process-global, so
//! this file holds exactly one test (its own binary → its own process).
//!
//! Lower bounds on the watermark are deliberately loose: on a single-core
//! runner the pool's workers may execute their panels one after another,
//! so only the *upper* bound (the budget) is deterministic.

use dlra::comm::Collectives;
use dlra::linalg::{
    parallelism_watermark, reset_parallelism_watermark, set_threads, threads, with_threads, Matrix,
};
use dlra::prelude::*;
use dlra::runtime::{ServiceConfig, Substrate, ThreadedCluster, Ticket};
use dlra::util::Rng;

#[test]
fn kernel_threads_never_exceed_the_configured_budget() {
    // A gram big enough to clear the kernel layer's parallel-work floor
    // (r·c² = 512·128² ≈ 8.4M flops > 2²¹).
    let mut rng = Rng::new(3);
    let big = Matrix::gaussian(512, 128, &mut rng);

    // Baseline: with the process knob at 4, a lone kernel call keeps at
    // most 4 kernel threads live (the caller plus ≤ 3 pool workers); the
    // watermark always observes at least the caller itself.
    set_threads(4);
    reset_parallelism_watermark();
    let direct = big.gram();
    assert!(
        (1..=4).contains(&parallelism_watermark()),
        "lone kernel watermark {} outside [1, 4]",
        parallelism_watermark()
    );

    // Scoped pin: the same call under with_threads(1, ..) runs inline —
    // exactly one live kernel thread, deterministically.
    reset_parallelism_watermark();
    let pinned = with_threads(1, || big.gram());
    assert_eq!(parallelism_watermark(), 1, "scoped override not observed");
    assert_eq!(direct.as_slice(), pinned.as_slice(), "pinning changed bits");

    // Composition: s = 6 server workers each running the same kernel
    // concurrently, with the process knob still at 4. Server workers pin
    // kernels to 1, so the budget is s × 1 = 6 live kernel threads — not
    // the s × 4 = 24 the two layers would multiply to unpinned.
    let s = 6;
    let locals: Vec<Matrix> = (0..s).map(|_| big.clone()).collect();
    let mut cluster = ThreadedCluster::new(locals);
    reset_parallelism_watermark();
    let observed = cluster.gather("composition.gram", |_t, local: &mut Matrix| {
        let g = local.gram();
        // Inside a server worker the kernel layer must observe the pin.
        (threads() as f64) + g[(0, 0)] * 0.0
    });
    assert!(
        parallelism_watermark() <= s,
        "total live kernel threads {} exceeded the budget of {s}",
        parallelism_watermark()
    );
    for (t, &seen) in observed.iter().enumerate() {
        assert_eq!(seen, 1.0, "server worker {t} saw {seen} kernel threads");
    }

    // And the per-server results are the pinned (= unpinned) bits.
    cluster.with_local(0, |local: &Matrix| {
        assert_eq!(local.gram().as_slice(), direct.as_slice());
    });
    drop(cluster);

    // Executor-layer kernel budgeting: service executors wrap each query
    // in `with_threads(max(1, total/executors))`, so coordinator-side
    // kernels (building B, its gram/SVD) share the process budget instead
    // of each executor claiming all of it. With the knob at 8 and 4
    // executors over s = 2 servers, any instant sees at most
    // `executors × max(s × 1, 8/4) = 4 × 2 = 8` live kernel threads — not
    // the `4 × 8 = 32` the unbudgeted layers would multiply to. The rows
    // sampled (600 × 64 columns) make the coordinator-side gram clear the
    // parallel-work floor, so the budget is genuinely exercised.
    set_threads(8);
    let executors = 4;
    let servers = 2;
    let mut rng = Rng::new(9);
    let locals: Vec<Matrix> = (0..servers)
        .map(|_| Matrix::gaussian(1024, 64, &mut rng))
        .collect();
    let service = Service::new(ServiceConfig {
        executors,
        substrate: Substrate::Threaded,
        plan_cache: 0,
        metrics: true,
        ..Default::default()
    });
    let dataset = service.load("budget", locals).unwrap();
    reset_parallelism_watermark();
    let tickets: Vec<Ticket> = (0..2 * executors)
        .map(|i| {
            let query = Query::rank(8)
                .samples(600)
                .sampler(SamplerKind::Uniform)
                .seed(50 + i as u64)
                .build()
                .unwrap();
            dataset.submit(&query)
        })
        .collect();
    for ticket in tickets {
        assert_eq!(ticket.wait().unwrap().output.projection.dim(), 64);
    }
    let budget = 8 / executors;
    assert!(
        parallelism_watermark() <= executors * servers.max(budget),
        "budgeted executors peaked at {} live kernel threads, bound is {}",
        parallelism_watermark(),
        executors * servers.max(budget)
    );

    set_threads(1);
}
