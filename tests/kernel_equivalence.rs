//! The blocked/threaded kernel contract: for every shape and thread count,
//! the cache-blocked, register-tiled, ISA-dispatched kernels are
//! **bit-identical** to the retained naive reference kernels — the fixed
//! per-element summation order makes the equality exact, not approximate.
//! Also pins the factored-projector equivalence (`Projector::to_dense`
//! matches the materialized `V·Vᵀ`) and the non-finite propagation the
//! seed's zero-skip used to swallow.

use dlra::linalg::kernels::reference;
use dlra::linalg::{orthonormalize_columns, set_threads, Matrix, Projector};
use dlra::util::Rng;
use proptest::{proptest, ProptestConfig};

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Rng::new(seed ^ 0xD1CE);
    Matrix::gaussian(rows, cols, &mut rng)
}

/// A matrix salted with exact zeros (the seed kernels special-cased them)
/// and sign flips, to exercise the dropped zero-skip branch.
fn sparse_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Rng::new(seed ^ 0x5AB0);
    Matrix::from_fn(rows, cols, |_, _| {
        if rng.f64() < 0.3 {
            0.0
        } else {
            rng.gaussian()
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Blocked/threaded matmul is bit-identical to the naive reference for
    /// arbitrary shapes, including dimensions straddling every block edge.
    #[test]
    fn matmul_bit_identical(seed in 0u64..10_000, m in 1usize..70, k in 1usize..70, n in 1usize..70, threads in 1usize..5) {
        let a = sparse_matrix(m, k, seed);
        let b = random_matrix(k, n, seed + 1);
        set_threads(threads);
        let fast = a.matmul(&b).unwrap();
        set_threads(1);
        let slow = reference::matmul(&a, &b).unwrap();
        proptest::prop_assert_eq!(fast.as_slice(), slow.as_slice());
    }

    /// Same contract for `transpose_matmul`.
    #[test]
    fn transpose_matmul_bit_identical(seed in 0u64..10_000, r in 1usize..70, c in 1usize..50, n in 1usize..50, threads in 1usize..5) {
        let a = sparse_matrix(r, c, seed);
        let b = random_matrix(r, n, seed + 2);
        set_threads(threads);
        let fast = a.transpose_matmul(&b).unwrap();
        set_threads(1);
        let slow = reference::transpose_matmul(&a, &b).unwrap();
        proptest::prop_assert_eq!(fast.as_slice(), slow.as_slice());
    }

    /// Same contract for `gram`.
    #[test]
    fn gram_bit_identical(seed in 0u64..10_000, r in 1usize..90, c in 1usize..60, threads in 1usize..5) {
        let a = sparse_matrix(r, c, seed);
        set_threads(threads);
        let fast = a.gram();
        set_threads(1);
        let slow = reference::gram(&a);
        proptest::prop_assert_eq!(fast.as_slice(), slow.as_slice());
    }

    /// Same contract for the blocked transpose.
    #[test]
    fn transpose_bit_identical(seed in 0u64..10_000, m in 1usize..80, n in 1usize..80, threads in 1usize..5) {
        let a = random_matrix(m, n, seed);
        set_threads(threads);
        let fast = a.transpose();
        set_threads(1);
        let slow = reference::transpose(&a);
        proptest::prop_assert_eq!(fast.as_slice(), slow.as_slice());
    }

    /// Thread count never changes a result: panels only partition the
    /// output, each element's summation chain is the same on every worker
    /// layout.
    #[test]
    fn thread_count_is_invisible(seed in 0u64..10_000, m in 1usize..60, k in 1usize..60, n in 1usize..60) {
        let a = random_matrix(m, k, seed);
        let b = random_matrix(k, n, seed + 3);
        set_threads(1);
        let one = a.matmul(&b).unwrap();
        for t in [2usize, 3, 7] {
            set_threads(t);
            let many = a.matmul(&b).unwrap();
            proptest::prop_assert_eq!(one.as_slice(), many.as_slice());
        }
        set_threads(1);
    }

    /// `Projector::to_dense` matches the materialized `V·Vᵀ` (the seed's
    /// representation) to 1e-12, and the factored residual matches the
    /// dense-path residual.
    #[test]
    fn projector_matches_materialized_vvt(seed in 0u64..10_000, d in 2usize..24, k in 1usize..6) {
        let k = k.min(d);
        let mut rng = Rng::new(seed ^ 0xBA515);
        let v = orthonormalize_columns(&Matrix::gaussian(d, k, &mut rng));
        let p = Projector::from_basis(v.clone());
        let dense = v.matmul(&v.transpose()).unwrap();
        let diff = p.to_dense().sub(&dense).unwrap().max_abs();
        proptest::prop_assert!(diff < 1e-12, "to_dense off by {}", diff);

        let a = Matrix::gaussian(3 * d, d, &mut rng);
        let factored = p.residual_sq(&a).unwrap();
        let dense_res = dlra::linalg::residual_sq(&a, &dense).unwrap();
        let scale = 1.0 + a.frobenius_norm_sq();
        proptest::prop_assert!(
            (factored - dense_res).abs() < 1e-9 * scale,
            "residual {} vs {}", factored, dense_res
        );
    }
}

/// Regression for the seed's NaN-swallowing zero-skip: `0 · NaN` and
/// `0 · ∞` must reach the output as NaN in every multiplicative kernel.
#[test]
fn non_finite_inputs_propagate() {
    set_threads(1);
    let a = Matrix::from_rows(&[vec![0.0, 1.0]]).unwrap();
    let bad = Matrix::from_rows(&[vec![f64::NAN], vec![2.0]]).unwrap();
    assert!(a.matmul(&bad).unwrap()[(0, 0)].is_nan());

    let inf = Matrix::from_rows(&[vec![f64::INFINITY], vec![2.0]]).unwrap();
    assert!(a.matmul(&inf).unwrap()[(0, 0)].is_nan());

    let cols = Matrix::from_rows(&[vec![0.0, 1.0], vec![f64::NAN, 2.0]]).unwrap();
    let ones = Matrix::from_rows(&[vec![1.0], vec![1.0]]).unwrap();
    assert!(cols.transpose_matmul(&ones).unwrap()[(0, 0)].is_nan());
    assert!(cols.gram()[(0, 0)].is_nan());
}
