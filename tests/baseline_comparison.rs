//! Ablation tests comparing Algorithm 1 against the prior-work
//! row-partition baseline and the idealized exact-probability oracle —
//! the "who wins where" structure of the paper's related-work discussion.

use dlra::core::baselines::row_partition_pca;
use dlra::linalg::Matrix;
use dlra::prelude::*;
use dlra::util::Rng;

/// Builds a row-partitioned dataset AND its equivalent generalized-partition
/// encoding (each server's row block embedded at its own row offsets, zeros
/// elsewhere, summing to the global matrix).
fn dual_representation(
    n: usize,
    d: usize,
    k: usize,
    s: usize,
    seed: u64,
) -> (Vec<Matrix>, Vec<Matrix>, Matrix) {
    let mut rng = Rng::new(seed);
    let u = Matrix::gaussian(n, k, &mut rng);
    let v = Matrix::gaussian(k, d, &mut rng);
    let mut a = u.matmul(&v).unwrap();
    a.add_assign(&Matrix::gaussian(n, d, &mut rng).scaled(0.1))
        .unwrap();
    let per = n / s;
    let mut blocks = Vec::new();
    let mut embedded = Vec::new();
    for t in 0..s {
        let lo = t * per;
        let hi = if t == s - 1 { n } else { (t + 1) * per };
        let rows: Vec<usize> = (lo..hi).collect();
        blocks.push(a.select_rows(&rows));
        let mut e = Matrix::zeros(n, d);
        for (bi, &i) in rows.iter().enumerate() {
            e.row_mut(i).copy_from_slice(blocks[t].row(bi));
        }
        embedded.push(e);
    }
    (blocks, embedded, a)
}

#[test]
fn row_partition_baseline_wins_its_home_turf() {
    // On row-partitioned data, the SVD-summary baseline achieves near-
    // optimal relative error; Algorithm 1 (additive guarantee) is close but
    // generally not better — matching the related-work positioning.
    let (blocks, embedded, a) = dual_representation(300, 20, 3, 5, 1);
    let k = 3;

    let base = row_partition_pca(blocks, k, 4 * k).unwrap();
    let e_base = evaluate_projection(&a, &base.projection, k).unwrap();
    assert!(
        e_base.relative_error < 1.05,
        "baseline {}",
        e_base.relative_error
    );

    let mut model = PartitionModel::new(embedded, EntryFunction::Identity).unwrap();
    let cfg = Algorithm1Config {
        k,
        r: 90,
        sampler: SamplerKind::Z(ZSamplerParams::default()),
        seed: 2,
        ..Algorithm1Config::default()
    };
    let alg1 = run_algorithm1(&mut model, &cfg).unwrap();
    let e_alg1 = evaluate_projection(&a, &alg1.projection, k).unwrap();
    // Additive error is small, but the baseline's relative error is tighter.
    assert!(
        e_alg1.additive_error < 0.1,
        "alg1 {}",
        e_alg1.additive_error
    );
    assert!(
        e_base.relative_error <= e_alg1.relative_error + 0.02,
        "baseline {} vs alg1 {}",
        e_base.relative_error,
        e_alg1.relative_error
    );
}

#[test]
fn baseline_cannot_express_nonlinear_aggregation() {
    // The generalized model's defining case: entries summed across servers
    // THEN passed through ψ. Feeding the row-partition baseline any of the
    // available matrices (a server's local share, or even the entry sums
    // without ψ) yields a wrong answer, while Algorithm 1 handles it.
    let mut rng = Rng::new(3);
    let clean = dlra::data::noisy_low_rank(200, 16, 2, 0.05, &mut rng);
    let mut dirty = clean.clone();
    for _ in 0..10 {
        let i = rng.index(200);
        let j = rng.index(16);
        dirty[(i, j)] = 1e4;
    }
    let parts = dlra::data::split_entrywise(&dirty, 4, &mut rng);
    let psi = EntryFunction::Huber { k: 5.0 };
    let model_truth = PartitionModel::new(parts.clone(), psi).unwrap();
    let capped = model_truth.global_matrix(); // ψ(Σ parts): the real target

    // Baseline applied to the raw (uncapped) matrix as row blocks — the
    // best it could do without the generalized model.
    let blocks: Vec<Matrix> = (0..4)
        .map(|t| dirty.select_rows(&((t * 50)..((t + 1) * 50)).collect::<Vec<_>>()))
        .collect();
    let base = row_partition_pca(blocks, 2, 8).unwrap();
    let e_base = evaluate_projection(&capped, &base.projection, 2).unwrap();

    // Algorithm 1 in the generalized model with ψ.
    let mut model = PartitionModel::new(parts, psi).unwrap();
    let cfg = Algorithm1Config {
        k: 2,
        r: 80,
        sampler: SamplerKind::Z(ZSamplerParams::default()),
        seed: 4,
        ..Algorithm1Config::default()
    };
    let alg1 = run_algorithm1(&mut model, &cfg).unwrap();
    let e_alg1 = evaluate_projection(&capped, &alg1.projection, 2).unwrap();

    assert!(
        e_alg1.additive_error < 0.5 * e_base.additive_error,
        "alg1 {} should beat baseline {} on ψ-aggregated data",
        e_alg1.additive_error,
        e_base.additive_error
    );
}

#[test]
fn exact_oracle_brackets_z_sampler_quality() {
    // Quality ordering on identical data/seeds, averaged over repetitions:
    // exact oracle ≤ Z-sampler ≲ starved Z-sampler.
    let err = |sampler: SamplerKind, seed: u64| -> f64 {
        let mut rng = Rng::new(31);
        let a = dlra::data::noisy_low_rank(250, 16, 3, 0.1, &mut rng);
        let parts = dlra::data::split_additively(&a, 4, &mut rng);
        let mut model = PartitionModel::new(parts, EntryFunction::Identity).unwrap();
        let cfg = Algorithm1Config {
            k: 3,
            r: 70,
            sampler,
            seed,
            ..Algorithm1Config::default()
        };
        let out = run_algorithm1(&mut model, &cfg).unwrap();
        evaluate_projection(&model.global_matrix(), &out.projection, 3)
            .unwrap()
            .additive_error
    };
    let reps = 5;
    let avg = |kind: &dyn Fn(u64) -> SamplerKind| -> f64 {
        (0..reps).map(|i| err(kind(i), 100 + i)).sum::<f64>() / reps as f64
    };
    let exact = avg(&|_| SamplerKind::ExactOracle);
    let z = avg(&|_| SamplerKind::Z(ZSamplerParams::default()));
    let starved = avg(&|_| SamplerKind::Z(ZSamplerParams::practical(250 * 16, 300)));
    assert!(exact <= z * 1.5 + 1e-3, "exact {exact} vs z {z}");
    assert!(z <= starved * 2.0 + 1e-3, "z {z} vs starved {starved}");
}
