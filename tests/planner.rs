//! Plan-cache semantics and the batched-submission guarantee:
//!
//! * `Runtime::submit_batch` of B queries sharing one `f` runs
//!   `ZSampler::prepare` **exactly once** — the ledger shows one
//!   prepare-phase cost plus B draw/fetch phases — and every query's
//!   output is bit-identical to a sequential run reusing the same
//!   `PreparedSampler`.
//! * Hits share the same `Arc`; misses occur on differing
//!   `ZSamplerParams`, seed, or `f`; reloading the resident dataset bumps
//!   the epoch and invalidates every cached plan.

use dlra::prelude::*;
use dlra::runtime::{QueryRequest, Runtime, RuntimeConfig, Substrate};
use dlra::util::Rng;

fn shares(s: usize, n: usize, d: usize, k: usize, seed: u64) -> Vec<dlra::linalg::Matrix> {
    let mut rng = Rng::new(seed);
    let global = dlra::data::noisy_low_rank(n, d, k, 0.1, &mut rng);
    dlra::data::split_with_noise_shares(&global, s, 0.3, &mut rng)
}

fn config(executors: usize, plan_cache: usize) -> RuntimeConfig {
    RuntimeConfig {
        executors,
        substrate: Substrate::Threaded,
        plan_cache,
        metrics: true,
        ..Default::default()
    }
}

fn z_request(k: usize, r: usize, seed: u64) -> QueryRequest {
    QueryRequest::identity(Algorithm1Config {
        k,
        r,
        sampler: SamplerKind::Z(ZSamplerParams::default()),
        seed,
        ..Default::default()
    })
}

/// The tentpole acceptance test: one preparation for the whole batch,
/// exact ledger decomposition, bit-identical outputs.
#[test]
fn submit_batch_prepares_once_with_bit_identical_outputs() {
    let parts = shares(4, 160, 12, 3, 21);
    let batch_seed = 77;
    let requests: Vec<QueryRequest> = (0..6)
        .map(|i| z_request(1 + i % 3, 25 + 5 * i, batch_seed))
        .collect();

    let runtime = Runtime::new(parts.clone(), config(4, 16)).unwrap();
    let outcomes: Vec<_> = runtime
        .submit_batch(requests.clone())
        .into_iter()
        .map(|h| h.wait_outcome().unwrap())
        .collect();

    // Exactly one query physically paid the preparation; every outcome
    // reports the same (deterministic) prepare cost.
    let payers = outcomes
        .iter()
        .filter(|o| !o.plan.as_ref().unwrap().cache_hit)
        .count();
    assert_eq!(payers, 1, "preparation ran {payers} times for one plan key");
    let stats = runtime.plan_cache_stats().unwrap();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, requests.len() as u64 - 1);
    let prepare_comm = outcomes[0].plan.as_ref().unwrap().prepare_comm;
    assert!(prepare_comm.total_words() > 0);
    for o in &outcomes {
        assert_eq!(o.plan.as_ref().unwrap().prepare_comm, prepare_comm);
    }

    // Reference: a sequential run that prepares once and reuses the same
    // PreparedSampler for every query of the batch — built under the
    // runtime's (possibly env-driven) topology so ledger shapes match.
    let topology = RuntimeConfig::default().topology;
    let mut model = PartitionModel::with_substrate(parts, EntryFunction::Identity, |l| {
        dlra::comm::Cluster::with_topology(l, topology)
    })
    .unwrap();
    let plan = prepare_z_plan(&mut model, &ZSamplerParams::default(), batch_seed).unwrap();
    assert_eq!(plan.prepare_comm, prepare_comm, "prepare ledger diverged");
    for (request, outcome) in requests.iter().zip(&outcomes) {
        let want = run_algorithm1_with_plan(&mut model, &request.cfg, &plan).unwrap();
        assert_eq!(
            outcome.output.projection.basis().as_slice(),
            want.projection.basis().as_slice(),
            "projection diverged from plan-reuse reference"
        );
        assert_eq!(outcome.output.rows, want.rows);
        assert_eq!(outcome.output.captured.to_bits(), want.captured.to_bits());
        // Batch ledger decomposition: the runtime reports prepare + own
        // draw/fetch per query; subtracting the shared prepare leaves
        // exactly the reference execution delta.
        assert_eq!(outcome.output.comm, plan.prepare_comm + want.comm);
    }

    // Total physical words for the batch: one prepare + B draw/fetch
    // phases — (B − 1) preparations cheaper than unbatched submission.
    let physical: u64 = prepare_comm.total_words()
        + outcomes
            .iter()
            .map(|o| o.output.comm.total_words() - prepare_comm.total_words())
            .sum::<u64>();
    let unbatched: u64 = outcomes.iter().map(|o| o.output.comm.total_words()).sum();
    assert_eq!(
        unbatched - physical,
        (requests.len() as u64 - 1) * prepare_comm.total_words()
    );
}

#[test]
fn plan_cache_misses_on_params_seed_and_f() {
    let parts = shares(3, 80, 8, 2, 5);
    let runtime = Runtime::new(parts, config(1, 16)).unwrap();

    runtime.submit(z_request(2, 20, 1)).wait().unwrap();
    let s0 = runtime.plan_cache_stats().unwrap();
    assert_eq!((s0.misses, s0.hits), (1, 0));

    // Same key: hit.
    runtime.submit(z_request(3, 25, 1)).wait().unwrap();
    let s1 = runtime.plan_cache_stats().unwrap();
    assert_eq!((s1.misses, s1.hits), (1, 1));

    // Different protocol seed: different prepare seed, miss.
    runtime.submit(z_request(2, 20, 2)).wait().unwrap();
    assert_eq!(runtime.plan_cache_stats().unwrap().misses, 2);

    // Different ZSamplerParams: miss.
    let other_params = ZSamplerParams {
        hh_width: 64,
        ..ZSamplerParams::default()
    };
    runtime
        .submit(QueryRequest::identity(Algorithm1Config {
            k: 2,
            r: 20,
            sampler: SamplerKind::Z(other_params),
            seed: 1,
            ..Default::default()
        }))
        .wait()
        .unwrap();
    assert_eq!(runtime.plan_cache_stats().unwrap().misses, 3);

    // Different f: miss (and a different prepared structure entirely).
    runtime
        .submit(QueryRequest {
            f: EntryFunction::Huber { k: 2.0 },
            cfg: z_request(2, 20, 1).cfg,
        })
        .wait()
        .unwrap();
    let s4 = runtime.plan_cache_stats().unwrap();
    assert_eq!(s4.misses, 4);
    assert_eq!(s4.hits, 1);
    assert_eq!(runtime.plan_cache_len(), 4);
}

#[test]
fn residency_reload_invalidates_cached_plans() {
    let old = shares(3, 96, 10, 3, 31);
    let new = shares(3, 96, 10, 3, 32);
    let runtime = Runtime::new(old, config(2, 16)).unwrap();

    let before = runtime.submit(z_request(2, 20, 9)).wait().unwrap();
    runtime.submit(z_request(2, 20, 9)).wait().unwrap();
    let warm = runtime.plan_cache_stats().unwrap();
    assert_eq!((warm.misses, warm.hits), (1, 1));
    assert_eq!(runtime.plan_cache_len(), 1);

    // Reload: epoch bumps, the cached plan is dropped, and the same query
    // re-prepares against (and answers from) the new data.
    runtime.reload_resident(new.clone()).unwrap();
    assert_eq!(runtime.resident_epoch(), 1);
    assert_eq!(runtime.plan_cache_len(), 0);
    assert_eq!(runtime.plan_cache_stats().unwrap().invalidations, 1);

    let after = runtime.submit(z_request(2, 20, 9)).wait().unwrap();
    let cold = runtime.plan_cache_stats().unwrap();
    assert_eq!((cold.misses, cold.hits), (2, 1), "stale plan was served");
    assert_ne!(
        after.projection.basis().as_slice(),
        before.projection.basis().as_slice(),
        "query after reload must see the new data"
    );
    let topology = RuntimeConfig::default().topology;
    let mut direct = PartitionModel::with_substrate(new, EntryFunction::Identity, |l| {
        dlra::comm::Cluster::with_topology(l, topology)
    })
    .unwrap();
    let want = run_algorithm1(&mut direct, &z_request(2, 20, 9).cfg).unwrap();
    assert_eq!(
        after.projection.basis().as_slice(),
        want.projection.basis().as_slice()
    );
    assert_eq!(after.comm, want.comm);
}
