//! Plan-cache semantics and the batched-submission guarantee:
//!
//! * `Runtime::submit_batch` of B queries sharing one `f` runs
//!   `ZSampler::prepare` **exactly once** — the ledger shows one
//!   prepare-phase cost plus B draw/fetch phases — and every query's
//!   output is bit-identical to a sequential run reusing the same
//!   `PreparedSampler`.
//! * Hits share the same `Arc`; misses occur on differing
//!   `ZSamplerParams`, seed, or `f`; reloading the resident dataset bumps
//!   the epoch and invalidates every cached plan.
//! * The stale-plan invariant under eviction: a plan prepared while its
//!   dataset is being evicted (explicitly or under memory-quota pressure)
//!   delivers to its waiters but is never left cached.

use dlra::prelude::*;
use dlra::runtime::{QueryRequest, Runtime, RuntimeConfig, Substrate};
use dlra::util::Rng;

fn shares(s: usize, n: usize, d: usize, k: usize, seed: u64) -> Vec<dlra::linalg::Matrix> {
    let mut rng = Rng::new(seed);
    let global = dlra::data::noisy_low_rank(n, d, k, 0.1, &mut rng);
    dlra::data::split_with_noise_shares(&global, s, 0.3, &mut rng)
}

fn config(executors: usize, plan_cache: usize) -> RuntimeConfig {
    RuntimeConfig {
        executors,
        substrate: Substrate::Threaded,
        plan_cache,
        metrics: true,
        ..Default::default()
    }
}

fn z_request(k: usize, r: usize, seed: u64) -> QueryRequest {
    QueryRequest::identity(Algorithm1Config {
        k,
        r,
        sampler: SamplerKind::Z(ZSamplerParams::default()),
        seed,
        ..Default::default()
    })
}

/// The tentpole acceptance test: one preparation for the whole batch,
/// exact ledger decomposition, bit-identical outputs.
#[test]
fn submit_batch_prepares_once_with_bit_identical_outputs() {
    let parts = shares(4, 160, 12, 3, 21);
    let batch_seed = 77;
    let requests: Vec<QueryRequest> = (0..6)
        .map(|i| z_request(1 + i % 3, 25 + 5 * i, batch_seed))
        .collect();

    let runtime = Runtime::new(parts.clone(), config(4, 16)).unwrap();
    let outcomes: Vec<_> = runtime
        .submit_batch(requests.clone())
        .into_iter()
        .map(|h| h.wait_outcome().unwrap())
        .collect();

    // Exactly one query physically paid the preparation; every outcome
    // reports the same (deterministic) prepare cost.
    let payers = outcomes
        .iter()
        .filter(|o| !o.plan.as_ref().unwrap().cache_hit)
        .count();
    assert_eq!(payers, 1, "preparation ran {payers} times for one plan key");
    let stats = runtime.plan_cache_stats().unwrap();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, requests.len() as u64 - 1);
    let prepare_comm = outcomes[0].plan.as_ref().unwrap().prepare_comm;
    assert!(prepare_comm.total_words() > 0);
    for o in &outcomes {
        assert_eq!(o.plan.as_ref().unwrap().prepare_comm, prepare_comm);
    }

    // Reference: a sequential run that prepares once and reuses the same
    // PreparedSampler for every query of the batch — built under the
    // runtime's (possibly env-driven) topology so ledger shapes match.
    let topology = RuntimeConfig::default().topology;
    let mut model = PartitionModel::with_substrate(parts, EntryFunction::Identity, |l| {
        dlra::comm::Cluster::with_topology(l, topology)
    })
    .unwrap();
    let plan = prepare_z_plan(&mut model, &ZSamplerParams::default(), batch_seed).unwrap();
    assert_eq!(plan.prepare_comm, prepare_comm, "prepare ledger diverged");
    for (request, outcome) in requests.iter().zip(&outcomes) {
        let want = run_algorithm1_with_plan(&mut model, &request.cfg, &plan).unwrap();
        assert_eq!(
            outcome.output.projection.basis().as_slice(),
            want.projection.basis().as_slice(),
            "projection diverged from plan-reuse reference"
        );
        assert_eq!(outcome.output.rows, want.rows);
        assert_eq!(outcome.output.captured.to_bits(), want.captured.to_bits());
        // Batch ledger decomposition: the runtime reports prepare + own
        // draw/fetch per query; subtracting the shared prepare leaves
        // exactly the reference execution delta.
        assert_eq!(outcome.output.comm, plan.prepare_comm + want.comm);
    }

    // Total physical words for the batch: one prepare + B draw/fetch
    // phases — (B − 1) preparations cheaper than unbatched submission.
    let physical: u64 = prepare_comm.total_words()
        + outcomes
            .iter()
            .map(|o| o.output.comm.total_words() - prepare_comm.total_words())
            .sum::<u64>();
    let unbatched: u64 = outcomes.iter().map(|o| o.output.comm.total_words()).sum();
    assert_eq!(
        unbatched - physical,
        (requests.len() as u64 - 1) * prepare_comm.total_words()
    );
}

#[test]
fn plan_cache_misses_on_params_seed_and_f() {
    let parts = shares(3, 80, 8, 2, 5);
    let runtime = Runtime::new(parts, config(1, 16)).unwrap();

    runtime.submit(z_request(2, 20, 1)).wait().unwrap();
    let s0 = runtime.plan_cache_stats().unwrap();
    assert_eq!((s0.misses, s0.hits), (1, 0));

    // Same key: hit.
    runtime.submit(z_request(3, 25, 1)).wait().unwrap();
    let s1 = runtime.plan_cache_stats().unwrap();
    assert_eq!((s1.misses, s1.hits), (1, 1));

    // Different protocol seed: different prepare seed, miss.
    runtime.submit(z_request(2, 20, 2)).wait().unwrap();
    assert_eq!(runtime.plan_cache_stats().unwrap().misses, 2);

    // Different ZSamplerParams: miss.
    let other_params = ZSamplerParams {
        hh_width: 64,
        ..ZSamplerParams::default()
    };
    runtime
        .submit(QueryRequest::identity(Algorithm1Config {
            k: 2,
            r: 20,
            sampler: SamplerKind::Z(other_params),
            seed: 1,
            ..Default::default()
        }))
        .wait()
        .unwrap();
    assert_eq!(runtime.plan_cache_stats().unwrap().misses, 3);

    // Different f: miss (and a different prepared structure entirely).
    runtime
        .submit(QueryRequest {
            f: EntryFunction::Huber { k: 2.0 },
            cfg: z_request(2, 20, 1).cfg,
        })
        .wait()
        .unwrap();
    let s4 = runtime.plan_cache_stats().unwrap();
    assert_eq!(s4.misses, 4);
    assert_eq!(s4.hits, 1);
    assert_eq!(runtime.plan_cache_len(), 4);
}

#[test]
fn residency_reload_invalidates_cached_plans() {
    let old = shares(3, 96, 10, 3, 31);
    let new = shares(3, 96, 10, 3, 32);
    let runtime = Runtime::new(old, config(2, 16)).unwrap();

    let before = runtime.submit(z_request(2, 20, 9)).wait().unwrap();
    runtime.submit(z_request(2, 20, 9)).wait().unwrap();
    let warm = runtime.plan_cache_stats().unwrap();
    assert_eq!((warm.misses, warm.hits), (1, 1));
    assert_eq!(runtime.plan_cache_len(), 1);

    // Reload: epoch bumps, the cached plan is dropped, and the same query
    // re-prepares against (and answers from) the new data.
    runtime.reload_resident(new.clone()).unwrap();
    assert_eq!(runtime.resident_epoch(), 1);
    assert_eq!(runtime.plan_cache_len(), 0);
    assert_eq!(runtime.plan_cache_stats().unwrap().invalidations, 1);

    let after = runtime.submit(z_request(2, 20, 9)).wait().unwrap();
    let cold = runtime.plan_cache_stats().unwrap();
    assert_eq!((cold.misses, cold.hits), (2, 1), "stale plan was served");
    assert_ne!(
        after.projection.basis().as_slice(),
        before.projection.basis().as_slice(),
        "query after reload must see the new data"
    );
    let topology = RuntimeConfig::default().topology;
    let mut direct = PartitionModel::with_substrate(new, EntryFunction::Identity, |l| {
        dlra::comm::Cluster::with_topology(l, topology)
    })
    .unwrap();
    let want = run_algorithm1(&mut direct, &z_request(2, 20, 9).cfg).unwrap();
    assert_eq!(
        after.projection.basis().as_slice(),
        want.projection.basis().as_slice()
    );
    assert_eq!(after.comm, want.comm);
}

fn service_config(executors: usize) -> ServiceConfig {
    ServiceConfig {
        executors,
        substrate: Substrate::Threaded,
        plan_cache: 16,
        metrics: true,
        max_queue_depth: None,
        memory_budget: None,
        ..Default::default()
    }
}

fn z_query(k: usize, r: usize, seed: u64) -> Query {
    Query::rank(k)
        .samples(r)
        .sampler(SamplerKind::Z(ZSamplerParams::default()))
        .seed(seed)
        .build()
        .unwrap()
}

/// Extends the stale-plan invariant to eviction: a preparation in flight
/// when its dataset is evicted still delivers to its waiters, but the plan
/// is never left cached — and no other tenant's partition moves. The
/// guarantee is structural, not timing-dependent: whichever of the
/// executor's post-run sweep and the evict's purge runs last drops it.
#[test]
fn evict_while_preparing_delivers_to_waiters_but_never_caches() {
    let service = Service::new(service_config(1));
    let victim = service.load("victim", shares(2, 512, 16, 4, 61)).unwrap();
    let other = service.load("other", shares(2, 80, 8, 2, 62)).unwrap();
    other.submit(&z_query(2, 20, 5)).wait().unwrap();
    assert_eq!(other.plan_cache_len(), 1);

    // A heavy Z query: the preparation is in flight when the evict lands.
    let preparing = victim.submit(&z_query(4, 120, 9));
    while !preparing.started() {
        std::thread::yield_now();
    }
    service.evict("victim").unwrap();

    // Started before the evict, so it runs to completion against the
    // payload it holds and delivers its outcome (plan provenance intact).
    let outcome = preparing.wait().expect("in-flight query must deliver");
    assert!(
        outcome.plan.is_some(),
        "a plannable Z query reports its plan"
    );
    assert_eq!(
        victim.plan_cache_len(),
        0,
        "a plan prepared during eviction must never stay cached"
    );
    // Late queries on the stale handle are typed.
    assert!(matches!(
        victim.submit(&z_query(2, 20, 9)).wait(),
        Err(ServiceError::DatasetEvicted { dataset }) if dataset == "victim"
    ));
    // Cross-tenant isolation: the other dataset's partition never moved.
    assert_eq!(other.plan_cache_len(), 1);
    assert_eq!(other.plan_stats().unwrap().invalidations, 0);
}

/// The quota-pressure variant: an idle tenant evicted by the budget sweep
/// has its settled plans purged, while a tenant with a preparation in
/// flight is pinned — the sweep skips it (staying over budget if nothing
/// else is evictable) and its plan lands in the cache as usual.
#[test]
fn quota_eviction_purges_plans_and_spares_preparing_tenants() {
    // shares(2, 64, 8, ..) = 2 × 64×8 × 8 = 8192 bytes per tenant.
    let small = |seed| shares(2, 64, 8, 2, seed);
    let service = Service::new(ServiceConfig {
        memory_budget: Some(20_000),
        ..service_config(1)
    });

    // Warm tenant a's cache, then push it out with quota pressure.
    let a = service.load("a", small(71)).unwrap();
    a.submit(&z_query(2, 20, 3)).wait().unwrap();
    assert_eq!(a.plan_cache_len(), 1);
    let b = service.load("b", small(72)).unwrap();
    let _c = service.load("c", small(73)).unwrap();
    assert!(a.is_evicted(), "idle LRU tenant must be quota-evicted");
    assert_eq!(
        a.plan_cache_len(),
        0,
        "quota eviction must purge the victim's settled plans"
    );
    assert!(matches!(
        a.submit(&z_query(2, 20, 3)).wait(),
        Err(ServiceError::DatasetEvicted { dataset }) if dataset == "a"
    ));

    // Park the executor behind a long query on c, then queue a Z
    // preparation on b: both datasets now hold admission pins, so the
    // sweep triggered by loading d finds no victim and the service stays
    // over budget rather than evict under a live query.
    let blocker = _c.submit(
        &Query::rank(2)
            .samples(20)
            .sampler(SamplerKind::Uniform)
            .boosted(50_000)
            .seed(8)
            .build()
            .unwrap(),
    );
    while !blocker.started() {
        std::thread::yield_now();
    }
    let preparing = b.submit(&z_query(2, 20, 4));
    let _d = service.load("d", small(74)).unwrap();
    assert!(!b.is_evicted(), "a pinned tenant must never be evicted");
    assert!(!_c.is_evicted(), "a pinned tenant must never be evicted");
    assert_eq!(
        service.pressure().resident_bytes,
        3 * 8_192,
        "with every candidate pinned the service stays over budget"
    );
    assert_eq!(service.pressure().evicted_under_pressure, 1);

    // The pinned preparation completes and (its dataset survived) its
    // plan is cached normally.
    assert!(blocker.wait().is_ok());
    assert!(preparing.wait().is_ok());
    assert_eq!(b.plan_cache_len(), 1);
}
