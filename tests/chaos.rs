//! Chaos/soak harness: randomized, seeded interleavings of
//! load/reload/evict/cancel/deadline/overload chaos against concurrent
//! traffic on a self-regulating [`Service`].
//!
//! One *anchor* tenant receives steady query traffic and is never the
//! subject of a lifecycle op; a small cast of *chaos* tenants is loaded,
//! reloaded, evicted (explicitly and under memory-quota pressure), and
//! queried throughout. A long-lived sentinel query pins the anchor for the
//! whole storm, so the quota sweep can never select it — by the service's
//! own pinning rule, not by test luck.
//!
//! Invariants asserted per seed, robust to thread scheduling:
//!
//! * **No panic** — the storm completes and the pool stays alive (no
//!   ticket ever resolves to `RuntimeUnavailable`).
//! * **Typed outcomes only** — every ticket resolves to `Ok` or one of
//!   `Cancelled` / `Deadline` / `DatasetEvicted` / `Overloaded`; a cancel
//!   that claimed its query (`cancel() == true`) resolves to exactly
//!   `Cancelled`.
//! * **No leak** — after the storm drains: the admission gauge is zero,
//!   resident bytes return to the anchor's exact footprint, evicted chaos
//!   payloads drop their last storage reference (refcount back to the
//!   test's own copy), and the anchor's queue/in-flight gauges are zero.
//! * **No cross-tenant plan invalidation** — the anchor's plan-cache
//!   partition records zero invalidations through every chaos op.
//!
//! The op count and seed count scale with `DLRA_CHAOS_OPS` /
//! `DLRA_CHAOS_SEEDS` (CI's soak smoke turns them up); the defaults keep
//! the test cheap enough for every local run.

use dlra::prelude::*;
use dlra::runtime::{ServiceConfig, Substrate};
use dlra::util::Rng;
use std::time::Duration;

fn shares(s: usize, n: usize, d: usize, k: usize, seed: u64) -> Vec<dlra::linalg::Matrix> {
    let mut rng = Rng::new(seed);
    let global = dlra::data::noisy_low_rank(n, d, k, 0.1, &mut rng);
    dlra::data::split_with_noise_shares(&global, s, 0.3, &mut rng)
}

/// 2 servers × 64×8 × 8 bytes.
const ANCHOR_BYTES: u64 = 8_192;
/// 2 servers × 16×8 × 8 bytes.
const CHAOS_BYTES: u64 = 2_048;
/// Fits the anchor plus two of four chaos tenants: a third concurrent
/// load forces the quota sweep to evict a chaos tenant (the pinned anchor
/// is never a candidate).
const BUDGET: u64 = ANCHOR_BYTES + 2 * CHAOS_BYTES + 512;

fn env_count(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

fn anchor_query(seed: u64) -> Query {
    Query::rank(2)
        .samples(20)
        .sampler(SamplerKind::Z(ZSamplerParams::default()))
        .seed(seed)
        .build()
        .unwrap()
}

fn chaos_query(seed: u64) -> Query {
    Query::rank(2)
        .samples(8)
        .sampler(SamplerKind::Uniform)
        .seed(seed)
        .build()
        .unwrap()
}

/// An outstanding ticket plus whether a `cancel()` claimed it (in which
/// case the only legal resolution is `Err(Cancelled)`).
struct Outstanding {
    ticket: Ticket,
    claimed_cancel: bool,
}

/// Resolves one outstanding ticket and asserts its outcome is typed and
/// consistent with the claims made against it.
fn settle(out: Outstanding, seed: u64, at: &str) {
    let shed = out.ticket.shed();
    let result = out.ticket.wait();
    if out.claimed_cancel {
        assert!(
            matches!(result, Err(ServiceError::Cancelled)),
            "seed {seed} {at}: cancel() == true must resolve to Cancelled, got {result:?}"
        );
        return;
    }
    if shed {
        assert!(
            matches!(result, Err(ServiceError::Overloaded { .. })),
            "seed {seed} {at}: shed ticket must resolve Overloaded, got {result:?}"
        );
        return;
    }
    match result {
        Ok(_)
        | Err(ServiceError::Cancelled)
        | Err(ServiceError::Deadline)
        | Err(ServiceError::DatasetEvicted { .. })
        | Err(ServiceError::Overloaded { .. }) => {}
        other => panic!("seed {seed} {at}: untyped chaos outcome {other:?}"),
    }
}

fn run_storm(seed: u64, ops: u64) {
    // Honor a CI-forced `DLRA_MAX_QUEUE`; force a bound of 6 otherwise so
    // the overload path is always exercised.
    let max_queue = ServiceConfig::default().max_queue_depth.or(Some(6));
    let service = Service::new(ServiceConfig {
        executors: 2,
        substrate: Substrate::Threaded,
        plan_cache: 16,
        metrics: true,
        max_queue_depth: max_queue,
        memory_budget: Some(BUDGET),
        ..Default::default()
    });

    let anchor_parts = shares(2, 64, 8, 2, 9_000 + seed);
    let anchor = service.load("anchor", anchor_parts.clone()).unwrap();

    // The sentinel: a heavily boosted query that outlasts the storm and is
    // cancelled at the end. From submission to resolution it pins the
    // anchor, so the quota sweep can never evict it mid-storm.
    let sentinel = anchor.submit(
        &Query::rank(2)
            .samples(20)
            .sampler(SamplerKind::Uniform)
            .boosted(2_000_000_000)
            .seed(seed)
            .build()
            .unwrap(),
    );
    assert!(!sentinel.shed(), "the first admission can never shed");
    while !sentinel.started() {
        std::thread::yield_now();
    }

    let chaos_names = ["c0", "c1", "c2", "c3"];
    // The test keeps its own clone of every chaos payload, so the leak
    // check below can observe the storage refcount drop back to 1.
    let chaos_parts: Vec<Vec<dlra::linalg::Matrix>> = (0..chaos_names.len())
        .map(|i| shares(2, 16, 8, 2, 7_000 + seed * 31 + i as u64))
        .collect();
    let mut chaos_handles: Vec<Option<DatasetHandle>> = vec![None; chaos_names.len()];

    let mut rng = Rng::new(seed);
    let mut outstanding: Vec<Outstanding> = Vec::new();
    let mut quota_evictions_seen = false;

    for op in 0..ops {
        match rng.below(8) {
            // Load a chaos tenant (possibly forcing a quota eviction).
            0 => {
                let i = rng.index(chaos_names.len());
                if service.dataset(chaos_names[i]).is_none() {
                    let handle = service
                        .load(chaos_names[i], chaos_parts[i].clone())
                        .unwrap();
                    chaos_handles[i] = Some(handle);
                }
            }
            // Reload a resident chaos tenant (bumps its epoch only).
            1 => {
                let i = rng.index(chaos_names.len());
                if service.dataset(chaos_names[i]).is_some() {
                    let _ = service.reload(chaos_names[i], chaos_parts[i].clone());
                }
            }
            // Explicitly evict a resident chaos tenant.
            2 => {
                let i = rng.index(chaos_names.len());
                let _ = service.evict(chaos_names[i]);
            }
            // Chaos traffic, possibly against a stale (evicted) handle.
            3 => {
                let i = rng.index(chaos_names.len());
                if let Some(handle) = &chaos_handles[i] {
                    outstanding.push(Outstanding {
                        ticket: handle.submit(&chaos_query(1_000 + op)),
                        claimed_cancel: false,
                    });
                }
            }
            // Chaos traffic with a tight deadline.
            4 => {
                let i = rng.index(chaos_names.len());
                if let Some(handle) = &chaos_handles[i] {
                    let micros = rng.below(300);
                    outstanding.push(Outstanding {
                        ticket: handle
                            .submit(&chaos_query(2_000 + op))
                            .deadline(Duration::from_micros(micros)),
                        claimed_cancel: false,
                    });
                }
            }
            // Cancel a random outstanding ticket.
            5 => {
                if !outstanding.is_empty() {
                    let i = rng.index(outstanding.len());
                    if outstanding[i].ticket.cancel() {
                        outstanding[i].claimed_cancel = true;
                    }
                }
            }
            // Anchor traffic: one shared plan key per seed, so the warm
            // cache keeps serving hits across every chaos op.
            6 => {
                outstanding.push(Outstanding {
                    ticket: anchor.submit(&anchor_query(seed)),
                    claimed_cancel: false,
                });
            }
            // Overload burst: rapid-fire submissions past the bound; the
            // excess sheds with the typed error.
            _ => {
                for burst in 0..8 {
                    outstanding.push(Outstanding {
                        ticket: anchor.submit(&anchor_query(3_000 + seed + burst)),
                        claimed_cancel: false,
                    });
                }
            }
        }
        // Keep the outstanding window bounded so shed tickets recycle into
        // admitted ones as the pool drains.
        while outstanding.len() > 12 {
            let next = outstanding.remove(0);
            settle(next, seed, "mid-storm");
        }
        if service.pressure().evicted_under_pressure > 0 {
            quota_evictions_seen = true;
        }
    }

    // Drain: every outstanding ticket resolves, typed.
    for out in outstanding.drain(..) {
        settle(out, seed, "drain");
    }
    // The sentinel honored the cancel mid-run and resolves to Cancelled.
    assert!(sentinel.cancel() || sentinel.started());
    assert!(matches!(
        sentinel.wait(),
        Err(ServiceError::Cancelled) | Ok(_)
    ));

    // Evict whatever chaos tenants survived the storm.
    for name in chaos_names {
        let _ = service.evict(name);
    }

    // --- Invariants -----------------------------------------------------
    // The anchor was never touched by any lifecycle op, quota sweep
    // included: zero cross-tenant plan invalidations, still serving.
    assert!(!anchor.is_evicted(), "seed {seed}: anchor must survive");
    assert_eq!(
        anchor.plan_stats().unwrap().invalidations,
        0,
        "seed {seed}: chaos ops must never invalidate the anchor's plans"
    );
    let verify = loop {
        let ticket = anchor.submit(&anchor_query(seed));
        if !ticket.shed() {
            break ticket;
        }
        std::thread::yield_now();
    };
    assert!(
        verify.wait().is_ok(),
        "seed {seed}: anchor must keep serving"
    );

    // No leak: the gauge is zero, bytes return to the anchor's exact
    // footprint, and — once the test's own handles are gone — no
    // service-internal reference (dataset map, plan cache, executor pool,
    // metrics) still pins an evicted chaos payload.
    drop(chaos_handles);
    let end = service.pressure();
    assert_eq!(end.admitted, 0, "seed {seed}: admissions leaked");
    assert_eq!(
        end.resident_bytes, ANCHOR_BYTES,
        "seed {seed}: byte accounting did not return to baseline"
    );
    for (i, parts) in chaos_parts.iter().enumerate() {
        for m in parts {
            assert_eq!(
                m.storage_refcount(),
                1,
                "seed {seed}: evicted tenant {} leaked matrix storage",
                chaos_names[i]
            );
        }
    }
    for (mine, resident) in anchor_parts.iter().zip(anchor.resident().iter()) {
        assert!(mine.shares_storage(resident), "seed {seed}: anchor copied");
    }
    let metrics = service.metrics().unwrap();
    let snap = metrics
        .datasets
        .iter()
        .find(|d| d.name == "anchor")
        .unwrap();
    assert_eq!(snap.queue_depth, 0, "seed {seed}: queue gauge leaked");
    assert_eq!(snap.in_flight, 0, "seed {seed}: in-flight gauge leaked");
    assert_eq!(snap.resident_bytes, ANCHOR_BYTES);
    // The storm actually exercised the pressure paths.
    if max_queue == Some(6) {
        assert!(
            metrics.pressure.rejected_overload > 0,
            "seed {seed}: the overload bursts must shed at the default bound"
        );
    }
    assert!(
        quota_evictions_seen || metrics.pressure.evicted_under_pressure > 0,
        "seed {seed}: the chaos loads must trigger at least one quota eviction"
    );
}

#[test]
fn chaos_storm_holds_service_invariants_across_seeds() {
    let seeds = env_count("DLRA_CHAOS_SEEDS", 3);
    let ops = env_count("DLRA_CHAOS_OPS", 120);
    for seed in 0..seeds {
        run_storm(seed, ops);
    }
}
